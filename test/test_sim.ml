(* Tests for the simulation substrate: RNG, heap, engine, latency
   models, statistics, histograms. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Sim.Rng.bits64 a <> Sim.Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Sim.Rng.create 7 in
  ignore (Sim.Rng.bits64 a);
  let b = Sim.Rng.copy a in
  let xa = Sim.Rng.bits64 a in
  let xb = Sim.Rng.bits64 b in
  Alcotest.(check int64) "copy continues the same stream" xa xb;
  ignore (Sim.Rng.bits64 a);
  (* advancing a does not advance b *)
  let xa2 = Sim.Rng.bits64 a and xb2 = Sim.Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after independent advance" true
    (xa2 <> xb2 || xa2 = xb2 (* they are at different offsets *));
  ignore (xa2, xb2)

let test_rng_split_independent () =
  let a = Sim.Rng.create 3 in
  let b = Sim.Rng.split a in
  (* ndnlint: allow G1 -- this test exercises exactly the post-split parent draw G1 bans, to prove the child stream is independent *)
  let xs = List.init 50 (fun _ -> Sim.Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Sim.Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Sim.Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int rng 0))

let test_rng_int_in () =
  let rng = Sim.Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int_in rng (-3) 4 in
    if v < -3 || v > 4 then Alcotest.failf "int_in out of range: %d" v
  done

let test_rng_uniformity () =
  let rng = Sim.Rng.create 9 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Sim.Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      if Float.abs (frac -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d has fraction %.4f" i frac)
    counts

let test_rng_float_bounds () =
  let rng = Sim.Rng.create 10 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_rng_bernoulli_extremes () =
  let rng = Sim.Rng.create 11 in
  Alcotest.(check bool) "p=0 is false" false (Sim.Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 is true" true (Sim.Rng.bernoulli rng 1.);
  Alcotest.(check bool) "p<0 is false" false (Sim.Rng.bernoulli rng (-0.5));
  Alcotest.(check bool) "p>1 is true" true (Sim.Rng.bernoulli rng 1.5)

let test_rng_bernoulli_mean () =
  let rng = Sim.Rng.create 12 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Sim.Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close "bernoulli(0.3) mean" 0.01 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_gaussian_moments () =
  let rng = Sim.Rng.create 13 in
  let stats = Sim.Stats.create () in
  for _ = 1 to 100_000 do
    Sim.Stats.add stats (Sim.Rng.gaussian rng ~mean:5. ~stddev:2.)
  done;
  check_close "gaussian mean" 0.05 5. (Sim.Stats.mean stats);
  check_close "gaussian stddev" 0.05 2. (Sim.Stats.stddev stats)

let test_rng_exponential_moments () =
  let rng = Sim.Rng.create 14 in
  let stats = Sim.Stats.create () in
  for _ = 1 to 100_000 do
    Sim.Stats.add stats (Sim.Rng.exponential rng ~rate:4.)
  done;
  check_close "exponential mean" 0.01 0.25 (Sim.Stats.mean stats)

let test_rng_exponential_rejects () =
  let rng = Sim.Rng.create 14 in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Sim.Rng.exponential rng ~rate:0.))

let test_rng_geometric_mean () =
  let rng = Sim.Rng.create 15 in
  let stats = Sim.Stats.create () in
  let p = 0.2 in
  for _ = 1 to 100_000 do
    Sim.Stats.add stats (float_of_int (Sim.Rng.geometric rng ~p))
  done;
  (* mean = (1-p)/p = 4 *)
  check_close "geometric mean" 0.12 4. (Sim.Stats.mean stats)

let test_rng_geometric_p1 () =
  let rng = Sim.Rng.create 16 in
  for _ = 1 to 100 do
    Alcotest.(check int) "geometric(1) = 0" 0 (Sim.Rng.geometric rng ~p:1.)
  done

let test_rng_shuffle_permutation () =
  let rng = Sim.Rng.create 17 in
  let a = Array.init 100 Fun.id in
  Sim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Sim.Rng.create 18 in
  for _ = 1 to 50 do
    let sample = Sim.Rng.sample_without_replacement rng 20 7 in
    Alcotest.(check int) "size" 7 (List.length sample);
    Alcotest.(check bool) "sorted distinct" true
      (List.sort_uniq compare sample = sample);
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20)) sample
  done;
  Alcotest.(check (list int)) "k = n is everything"
    (List.init 5 Fun.id)
    (Sim.Rng.sample_without_replacement rng 5 5)

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  let rng = Sim.Rng.create 20 in
  for i = 0 to 999 do
    Sim.Heap.add h ~time:(Sim.Rng.float rng 100.) ~seq:i i
  done;
  let rec drain last n =
    match Sim.Heap.pop_min h with
    | None -> n
    | Some (t, _, _) ->
      if t < last then Alcotest.failf "heap order violated: %f after %f" t last;
      drain t (n + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0)

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  for i = 0 to 9 do
    Sim.Heap.add h ~time:1. ~seq:i i
  done;
  for i = 0 to 9 do
    match Sim.Heap.pop_min h with
    | Some (_, seq, v) ->
      Alcotest.(check int) "fifo seq" i seq;
      Alcotest.(check int) "fifo payload" i v
    | None -> Alcotest.fail "heap empty early"
  done

let test_heap_peek () =
  let h = Sim.Heap.create () in
  Alcotest.(check bool) "empty peek" true (Sim.Heap.peek_min h = None);
  Sim.Heap.add h ~time:2. ~seq:0 "b";
  Sim.Heap.add h ~time:1. ~seq:1 "a";
  (match Sim.Heap.peek_min h with
  | Some (t, _, v) ->
    check_float "peek time" 1. t;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not remove" 2 (Sim.Heap.length h)

let test_heap_clear () =
  let h = Sim.Heap.create () in
  for i = 0 to 5 do
    Sim.Heap.add h ~time:(float_of_int i) ~seq:i i
  done;
  Sim.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Sim.Heap.is_empty h)

(* --- Engine --- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log));
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "events fire in time order" [ 3; 2; 1 ] !log;
  check_float "clock at last event" 3. (Sim.Engine.now e)

let test_engine_same_instant_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.Engine.schedule e ~delay:1. (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo among ties" (List.init 10 (fun i -> 9 - i)) !log

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1. (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Sim.Engine.schedule e ~delay:1. (fun () -> fired := "inner" :: !fired))));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested event fires" [ "inner"; "outer" ] !fired;
  check_float "clock" 2. (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check bool) "handle reports cancelled" true (Sim.Engine.is_cancelled h)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.Engine.run ~until:5. e;
  Alcotest.(check int) "only events up to the limit" 5 !count;
  check_float "clock clamped to limit" 5. (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "remaining events fire on resume" 10 !count

let test_engine_max_events () =
  let e = Sim.Engine.create () in
  (* Self-perpetuating event chain. *)
  let rec arm () = ignore (Sim.Engine.schedule e ~delay:1. arm) in
  arm ();
  Sim.Engine.run ~max_events:100 e;
  Alcotest.(check int) "bounded by max_events" 100 (Sim.Engine.events_processed e)

let test_engine_negative_delay_clamped () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:5. (fun () -> ()));
  Sim.Engine.run e;
  let fired_at = ref (-1.) in
  ignore (Sim.Engine.schedule e ~delay:(-3.) (fun () -> fired_at := Sim.Engine.now e));
  Sim.Engine.run e;
  check_float "negative delay runs now" 5. !fired_at

let test_engine_schedule_at_past () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> ()));
  Sim.Engine.run e;
  let fired_at = ref (-1.) in
  ignore (Sim.Engine.schedule_at e ~time:0.5 (fun () -> fired_at := Sim.Engine.now e));
  Sim.Engine.run e;
  check_float "past time clamps to now" 2. !fired_at

let test_engine_pending_live_only () =
  let e = Sim.Engine.create () in
  let h1 = Sim.Engine.schedule e ~delay:1. (fun () -> ()) in
  let h2 = Sim.Engine.schedule e ~delay:2. (fun () -> ()) in
  ignore (Sim.Engine.schedule e ~delay:3. (fun () -> ()));
  Alcotest.(check int) "three live" 3 (Sim.Engine.pending e);
  Sim.Engine.cancel h1;
  Alcotest.(check int) "cancelled event not counted" 2 (Sim.Engine.pending e);
  Sim.Engine.cancel h1;
  Alcotest.(check int) "double cancel counted once" 2 (Sim.Engine.pending e);
  (* The first pop is the cancelled event: no action runs, and the live
     count is unchanged. *)
  ignore (Sim.Engine.step e);
  Alcotest.(check int) "nothing executed yet" 0 (Sim.Engine.events_processed e);
  Alcotest.(check int) "still two live" 2 (Sim.Engine.pending e);
  ignore (Sim.Engine.step e);
  Alcotest.(check int) "one executed" 1 (Sim.Engine.events_processed e);
  Alcotest.(check int) "one live left" 1 (Sim.Engine.pending e);
  Sim.Engine.cancel h2;
  Alcotest.(check int) "cancel after fire leaves count intact" 1
    (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "drained" 0 (Sim.Engine.pending e)

(* --- Latency --- *)

let test_latency_constant () =
  let rng = Sim.Rng.create 30 in
  check_float "constant" 4.2 (Sim.Latency.sample (Sim.Latency.Constant 4.2) rng)

let test_latency_uniform_bounds () =
  let rng = Sim.Rng.create 31 in
  let m = Sim.Latency.Uniform { lo = 2.; hi = 3. } in
  for _ = 1 to 1000 do
    let v = Sim.Latency.sample m rng in
    if v < 2. || v > 3. then Alcotest.failf "uniform out of bounds: %f" v
  done

let test_latency_normal_truncation () =
  let rng = Sim.Rng.create 32 in
  let m = Sim.Latency.Normal { mean = 1.; stddev = 5.; min = 0.5 } in
  for _ = 1 to 2000 do
    let v = Sim.Latency.sample m rng in
    if v < 0.5 then Alcotest.failf "normal below min: %f" v
  done

let test_latency_shifted_exponential_floor () =
  let rng = Sim.Rng.create 33 in
  let m = Sim.Latency.Shifted_exponential { shift = 3.; rate = 2. } in
  for _ = 1 to 2000 do
    let v = Sim.Latency.sample m rng in
    if v < 3. then Alcotest.failf "below shift: %f" v
  done

let test_latency_sum_mean () =
  let rng = Sim.Rng.create 34 in
  let m = Sim.Latency.Sum [ Sim.Latency.Constant 1.; Sim.Latency.Constant 2. ] in
  check_float "sum of constants" 3. (Sim.Latency.sample m rng);
  check_float "analytic mean" 3. (Sim.Latency.mean m)

let test_latency_mean_estimates () =
  let rng = Sim.Rng.create 35 in
  let models =
    [
      Sim.Latency.Uniform { lo = 1.; hi = 5. };
      Sim.Latency.Shifted_exponential { shift = 2.; rate = 0.5 };
      Sim.Latency.Normal { mean = 10.; stddev = 1.; min = 0. };
    ]
  in
  List.iter
    (fun m ->
      let stats = Sim.Stats.create () in
      for _ = 1 to 50_000 do
        Sim.Stats.add stats (Sim.Latency.sample m rng)
      done;
      check_close "empirical mean matches analytic" 0.1 (Sim.Latency.mean m)
        (Sim.Stats.mean stats))
    models

(* --- Stats --- *)

let test_stats_basic () =
  let s = Sim.Stats.create () in
  Sim.Stats.add_list s [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Sim.Stats.count s);
  check_float "mean" 2.5 (Sim.Stats.mean s);
  check_close "variance" 1e-9 (5. /. 3.) (Sim.Stats.variance s);
  check_float "min" 1. (Sim.Stats.min s);
  check_float "max" 4. (Sim.Stats.max s);
  check_float "total" 10. (Sim.Stats.total s)

let test_stats_empty () =
  let s = Sim.Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Sim.Stats.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Sim.Stats.variance s))

let test_stats_merge () =
  let a = Sim.Stats.create () and b = Sim.Stats.create () and whole = Sim.Stats.create () in
  let rng = Sim.Rng.create 40 in
  for i = 1 to 1000 do
    let x = Sim.Rng.float rng 10. in
    Sim.Stats.add whole x;
    if i <= 300 then Sim.Stats.add a x else Sim.Stats.add b x
  done;
  let merged = Sim.Stats.merge a b in
  Alcotest.(check int) "merged count" (Sim.Stats.count whole) (Sim.Stats.count merged);
  check_close "merged mean" 1e-9 (Sim.Stats.mean whole) (Sim.Stats.mean merged);
  check_close "merged variance" 1e-8 (Sim.Stats.variance whole)
    (Sim.Stats.variance merged)

let test_percentiles () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Sim.Stats.median xs);
  check_float "p0" 1. (Sim.Stats.percentile xs 0.);
  check_float "p100" 5. (Sim.Stats.percentile xs 100.);
  check_float "p25" 2. (Sim.Stats.percentile xs 25.)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Sim.Stats.percentile [||] 50.));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Sim.Stats.percentile [| 1. |] 101.))

(* --- Histogram --- *)

let test_histogram_binning () =
  let h = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Sim.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9 ];
  let counts = Sim.Histogram.counts h in
  Alcotest.(check int) "bin 0" 1 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9" 1 counts.(9);
  Alcotest.(check int) "total" 4 (Sim.Histogram.count h)

let test_histogram_clamping () =
  let h = Sim.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Sim.Histogram.add h (-5.);
  Sim.Histogram.add h 100.;
  let counts = Sim.Histogram.counts h in
  Alcotest.(check int) "low clamps to first" 1 counts.(0);
  Alcotest.(check int) "high clamps to last" 1 counts.(3)

let test_histogram_pdf_integrates () =
  let rng = Sim.Rng.create 50 in
  let h = Sim.Histogram.create ~lo:0. ~hi:5. ~bins:25 in
  for _ = 1 to 10_000 do
    Sim.Histogram.add h (Sim.Rng.float rng 5.)
  done;
  let pdf = Sim.Histogram.pdf h in
  let edges = Sim.Histogram.bin_edges h in
  let integral =
    Array.fold_left ( +. ) 0.
      (Array.mapi (fun i p -> p *. (snd edges.(i) -. fst edges.(i))) pdf)
  in
  check_close "pdf integrates to 1" 1e-9 1. integral

let test_histogram_overlap () =
  let a = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  let b = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  for _ = 1 to 100 do
    Sim.Histogram.add a 1.5;
    Sim.Histogram.add b 8.5
  done;
  check_float "disjoint overlap" 0. (Sim.Histogram.overlap a b);
  check_float "self overlap" 1. (Sim.Histogram.overlap a a)

let test_histogram_overlap_layout_mismatch () =
  let a = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  let b = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:20 in
  Alcotest.check_raises "layouts differ"
    (Invalid_argument "Histogram.overlap: layouts differ") (fun () ->
      ignore (Sim.Histogram.overlap a b))

let test_histogram_of_samples () =
  let h = Sim.Histogram.of_samples ~bins:5 [| 1.; 2.; 3. |] in
  Alcotest.(check int) "count" 3 (Sim.Histogram.count h);
  Alcotest.(check int) "bins" 5 (Sim.Histogram.bins h)

(* --- merge laws (the contracts Sim.Parallel relies on) --- *)

let test_histogram_merge_splits () =
  let rng = Sim.Rng.create 77 in
  let samples = Array.init 1_000 (fun _ -> Sim.Rng.float rng 10.) in
  let whole = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:32 in
  Array.iter (Sim.Histogram.add whole) samples;
  let left = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:32 in
  let right = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:32 in
  Array.iteri
    (fun i x -> Sim.Histogram.add (if i < 400 then left else right) x)
    samples;
  let merged = Sim.Histogram.merge left right in
  Alcotest.(check bool) "merge of splits = unsplit accumulation" true
    (Sim.Histogram.equal whole merged);
  Alcotest.(check int) "count adds up" 1_000 (Sim.Histogram.count merged);
  (* merge leaves its arguments untouched *)
  Alcotest.(check int) "left untouched" 400 (Sim.Histogram.count left);
  Sim.Histogram.merge_into ~into:left right;
  Alcotest.(check bool) "merge_into agrees with merge" true
    (Sim.Histogram.equal whole left)

let test_histogram_merge_layout_mismatch () =
  let a = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  let b = Sim.Histogram.create ~lo:0. ~hi:5. ~bins:10 in
  Alcotest.check_raises "layouts differ"
    (Invalid_argument "Histogram.merge: layouts differ") (fun () ->
      ignore (Sim.Histogram.merge a b))

let test_stats_merge_chan () =
  (* Chan's parallel update must agree with the unsplit Welford stream
     to 1e-9 even when the two halves have very different means. *)
  let rng = Sim.Rng.create 78 in
  let low = Array.init 500 (fun _ -> Sim.Rng.gaussian rng ~mean:2. ~stddev:0.5) in
  let high = Array.init 700 (fun _ -> Sim.Rng.gaussian rng ~mean:900. ~stddev:4.) in
  let whole = Sim.Stats.create () in
  Array.iter (Sim.Stats.add whole) low;
  Array.iter (Sim.Stats.add whole) high;
  let a = Sim.Stats.create () and b = Sim.Stats.create () in
  Array.iter (Sim.Stats.add a) low;
  Array.iter (Sim.Stats.add b) high;
  let merged = Sim.Stats.merge a b in
  Alcotest.(check int) "count" (Sim.Stats.count whole) (Sim.Stats.count merged);
  check_close "mean" 1e-9 (Sim.Stats.mean whole) (Sim.Stats.mean merged);
  check_close "variance (relative)" 1e-9 1.
    (Sim.Stats.variance merged /. Sim.Stats.variance whole);
  check_float "min" (Sim.Stats.min whole) (Sim.Stats.min merged);
  check_float "max" (Sim.Stats.max whole) (Sim.Stats.max merged)

(* --- property tests --- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"rng int always within bound" ~count:500
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Sim.Rng.create seed in
        let v = Sim.Rng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
      QCheck.(
        pair
          (array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
          (pair (float_range 0. 100.) (float_range 0. 100.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Sim.Stats.percentile xs lo <= Sim.Stats.percentile xs hi +. 1e-9);
    QCheck.Test.make ~name:"heap drains in key order" ~count:200
      QCheck.(list (float_range 0. 1000.))
      (fun times ->
        let h = Sim.Heap.create () in
        List.iteri (fun i t -> Sim.Heap.add h ~time:t ~seq:i i) times;
        let rec drain last =
          match Sim.Heap.pop_min h with
          | None -> true
          | Some (t, _, _) -> t >= last && drain t
        in
        drain neg_infinity);
    (* Model check: the slot-indirection heap against a sorted-list
       reference, over an arbitrary interleaving of adds, pops,
       bounded pops ([pop_if_min_before]) and clears.  Times are drawn
       from a coarse grid so ties are common, which pins the FIFO
       seq tie-break; element identity (not just key order) is compared
       so a slot-recycling bug that served the wrong payload would be
       caught. *)
    QCheck.Test.make ~name:"heap agrees with sorted-list model" ~count:300
      QCheck.(
        list
          (oneof
             [
               Gen.map (fun t -> `Add (float_of_int t)) (Gen.int_range 0 20)
               |> make ~print:(fun _ -> "op");
               always `Pop;
               Gen.map
                 (fun t -> `Pop_before (float_of_int t))
                 (Gen.int_range 0 20)
               |> make ~print:(fun _ -> "op");
               always `Clear;
             ]))
      (fun ops ->
        let h = Sim.Heap.create () in
        (* Model: list of (time, seq, payload) kept sorted by (time, seq). *)
        let model = ref [] in
        let key_le (t1, s1, _) (t2, s2, _) =
          t1 < t2 || (t1 = t2 && s1 <= s2)
        in
        let insert e =
          let rec go = function
            | [] -> [ e ]
            | x :: rest -> if key_le e x then e :: x :: rest else x :: go rest
          in
          model := go !model
        in
        let seq = ref 0 in
        List.for_all
          (fun op ->
            match op with
            | `Add t ->
              let payload = !seq * 17 in
              Sim.Heap.add h ~time:t ~seq:!seq payload;
              insert (t, !seq, payload);
              incr seq;
              Sim.Heap.length h = List.length !model
            | `Pop -> (
              match (Sim.Heap.pop_min h, !model) with
              | None, [] -> true
              | Some got, m :: rest ->
                model := rest;
                got = m
              | _ -> false)
            | `Pop_before limit -> (
              let expect =
                match !model with
                | (t, _, p) :: rest when t <= limit ->
                  model := rest;
                  Some p
                | _ -> None
              in
              match (Sim.Heap.pop_if_min_before h limit, expect) with
              | None, None -> true
              | Some got, Some want -> got = want
              | _ -> false)
            | `Clear ->
              Sim.Heap.clear h;
              model := [];
              Sim.Heap.is_empty h)
          ops);
    QCheck.Test.make ~name:"welford matches direct mean" ~count:200
      QCheck.(array_of_size Gen.(int_range 1 100) (float_range (-1e3) 1e3))
      (fun xs ->
        let s = Sim.Stats.create () in
        Array.iter (Sim.Stats.add s) xs;
        let direct = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs) in
        Float.abs (Sim.Stats.mean s -. direct) < 1e-6);
    QCheck.Test.make ~name:"histogram merge of random splits = unsplit" ~count:200
      QCheck.(
        pair
          (list_of_size Gen.(int_range 0 200) (float_range (-5.) 15.))
          (int_range 0 200))
      (fun (samples, cut) ->
        let cut = min cut (List.length samples) in
        let fill xs =
          let h = Sim.Histogram.create ~lo:0. ~hi:10. ~bins:16 in
          List.iter (Sim.Histogram.add h) xs;
          h
        in
        let whole = fill samples in
        let left = fill (List.filteri (fun i _ -> i < cut) samples) in
        let right = fill (List.filteri (fun i _ -> i >= cut) samples) in
        Sim.Histogram.equal whole (Sim.Histogram.merge left right));
    QCheck.Test.make ~name:"stats merge matches unsplit stream (Chan)" ~count:200
      QCheck.(
        pair
          (list_of_size Gen.(int_range 0 100) (float_range (-1e3) 1e3))
          (list_of_size Gen.(int_range 0 100) (float_range (-1e3) 1e3)))
      (fun (xs, ys) ->
        let fill zs =
          let s = Sim.Stats.create () in
          List.iter (Sim.Stats.add s) zs;
          s
        in
        let whole = fill (xs @ ys) in
        let merged = Sim.Stats.merge (fill xs) (fill ys) in
        let close a b =
          (Float.is_nan a && Float.is_nan b)
          || Float.abs (a -. b)
             <= 1e-7 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
        in
        Sim.Stats.count whole = Sim.Stats.count merged
        && close (Sim.Stats.mean whole) (Sim.Stats.mean merged)
        && close (Sim.Stats.variance whole) (Sim.Stats.variance merged)
        && close (Sim.Stats.total whole) (Sim.Stats.total merged));
    QCheck.Test.make ~name:"latency samples are non-negative" ~count:500
      QCheck.(triple small_int (float_range 0. 10.) (float_range 0.1 5.))
      (fun (seed, mean, stddev) ->
        let rng = Sim.Rng.create seed in
        Sim.Latency.sample (Sim.Latency.Normal { mean; stddev; min = 0. }) rng >= 0.);
    QCheck.Test.make ~name:"engine: same-instant events fire in scheduling order"
      ~count:200
      QCheck.(int_range 1 50)
      (fun n ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        for i = 0 to n - 1 do
          ignore (Sim.Engine.schedule e ~delay:1. (fun () -> log := i :: !log))
        done;
        Sim.Engine.run e;
        List.rev !log = List.init n (fun i -> i));
    QCheck.Test.make ~name:"engine: clock is monotone across step" ~count:200
      QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0. 100.))
      (fun delays ->
        let e = Sim.Engine.create () in
        List.iter
          (fun d -> ignore (Sim.Engine.schedule e ~delay:d (fun () -> ())))
          delays;
        let rec monotone last =
          if Sim.Engine.step e then
            let t = Sim.Engine.now e in
            t >= last && monotone t
          else true
        in
        monotone (Sim.Engine.now e));
    QCheck.Test.make ~name:"engine: cancel after fire is a no-op" ~count:200
      QCheck.(int_range 0 40)
      (fun n ->
        let e = Sim.Engine.create () in
        let handles =
          List.init n (fun i ->
              Sim.Engine.schedule e ~delay:(float_of_int (i mod 5)) (fun () -> ()))
        in
        Sim.Engine.run e;
        List.iter Sim.Engine.cancel handles;
        Sim.Engine.pending e = 0
        && Sim.Engine.events_processed e = n
        && not (List.exists Sim.Engine.is_cancelled handles));
    QCheck.Test.make ~name:"engine: run ~until leaves later events queued"
      ~count:200
      QCheck.(
        pair
          (list_of_size Gen.(int_range 1 40) (float_range 0. 100.))
          (float_range 0. 100.))
      (fun (delays, limit) ->
        let e = Sim.Engine.create () in
        List.iter
          (fun d -> ignore (Sim.Engine.schedule e ~delay:d (fun () -> ())))
          delays;
        Sim.Engine.run ~until:limit e;
        let due = List.length (List.filter (fun d -> d <= limit) delays) in
        Sim.Engine.events_processed e = due
        && Sim.Engine.pending e = List.length delays - due
        &&
        (Sim.Engine.run e;
         Sim.Engine.events_processed e = List.length delays));
    QCheck.Test.make ~name:"engine: max_events bounds execution" ~count:200
      QCheck.(pair (int_range 0 60) (int_range 0 60))
      (fun (n, budget) ->
        let e = Sim.Engine.create () in
        for i = 1 to n do
          ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> ()))
        done;
        Sim.Engine.run ~max_events:budget e;
        let fired = min n budget in
        Sim.Engine.events_processed e = fired
        && Sim.Engine.pending e = n - fired);
  ]

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Slow test_rng_bernoulli_mean;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "exponential moments" `Slow test_rng_exponential_moments;
          Alcotest.test_case "exponential rejects" `Quick test_rng_exponential_rejects;
          Alcotest.test_case "geometric mean" `Slow test_rng_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_rng_geometric_p1;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same instant fifo" `Quick test_engine_same_instant_fifo;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "schedule_at past" `Quick test_engine_schedule_at_past;
          Alcotest.test_case "pending counts live only" `Quick
            test_engine_pending_live_only;
        ] );
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "uniform bounds" `Quick test_latency_uniform_bounds;
          Alcotest.test_case "normal truncation" `Quick test_latency_normal_truncation;
          Alcotest.test_case "shifted exponential floor" `Quick
            test_latency_shifted_exponential_floor;
          Alcotest.test_case "sum" `Quick test_latency_sum_mean;
          Alcotest.test_case "empirical means" `Slow test_latency_mean_estimates;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "clamping" `Quick test_histogram_clamping;
          Alcotest.test_case "pdf integrates" `Quick test_histogram_pdf_integrates;
          Alcotest.test_case "overlap" `Quick test_histogram_overlap;
          Alcotest.test_case "overlap layout mismatch" `Quick
            test_histogram_overlap_layout_mismatch;
          Alcotest.test_case "of_samples" `Quick test_histogram_of_samples;
          Alcotest.test_case "merge splits" `Quick test_histogram_merge_splits;
          Alcotest.test_case "merge layout mismatch" `Quick
            test_histogram_merge_layout_mismatch;
        ] );
      ( "merge laws",
        [ Alcotest.test_case "stats merge (Chan)" `Quick test_stats_merge_chan ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
