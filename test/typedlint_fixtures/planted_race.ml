(* Planted R1 fixture: module-level mutable state in a unit that
   imports a spawn unit.  [schedule_probe] hands the engine a callback
   that mutates [shared_hits]; under Sim.Shard every domain would race
   on the table, which is exactly what rule R1 must catch. *)

let shared_hits : (string, int) Hashtbl.t = Hashtbl.create 16

let record label =
  let prev = Option.value (Hashtbl.find_opt shared_hits label) ~default:0 in
  Hashtbl.replace shared_hits label (prev + 1)

let schedule_probe engine label =
  ignore (Sim.Engine.schedule engine ~delay:1.0 (fun () -> record label))
