(* Planted G1 fixture: [draw_after_split] draws from the parent handle
   after splitting it; [resplit_ok] shows the exemption for feeding a
   split handle back into split. *)

let draw_after_split seed =
  let parent = Sim.Rng.create seed in
  let child = Sim.Rng.split parent in
  let a = Sim.Rng.bits64 parent in
  let b = Sim.Rng.bits64 child in
  Int64.add a b

let resplit_ok seed =
  let parent = Sim.Rng.create seed in
  let c1 = Sim.Rng.split parent in
  let c2 = Sim.Rng.split parent in
  Int64.add (Sim.Rng.bits64 c1) (Sim.Rng.bits64 c2)
