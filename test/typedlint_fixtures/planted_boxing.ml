(* Planted A1/A2 fixture: hot-annotated functions that allocate and
   compare generically, for the zero-alloc checker tests. *)

type point = { x : float; y : float }

(* ndnlint: hot *)
let centroid pts =
  let sx, sy =
    List.fold_left (fun (ax, ay) p -> (ax +. p.x, ay +. p.y)) (0., 0.) pts
  in
  (sx /. 2., sy /. 2.)

(* ndnlint: hot *)
let same_point (a : point) b = a = b
