(* Tests for the Sim.Trace observability subsystem: schema round-trips,
   exporter formatting and escaping, buffering/sink semantics, the
   end-to-end emission coverage of an instrumented probe run, topology
   round-trips through the .topo printer, and the determinism
   guarantees (--jobs invariance, golden trace). *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0

let all_kinds =
  [
    Sim.Trace.Engine_step;
    Cs_hit;
    Cs_miss;
    Cs_insert;
    Cs_evict;
    Cs_expire;
    Interest_received;
    Interest_forwarded;
    Interest_collapsed;
    Data_received;
    Data_sent;
    Pit_timeout;
    Link_transmit;
    Link_drop;
    Rc_draw;
    Rc_fake_miss;
    Rc_hit;
    Cs_flush;
    Fault_link;
    Fault_crash;
    Fault_restart;
    Fault_producer;
  ]

let ev ?(time = 1.25) ?(node = "R") ?(kind = Sim.Trace.Cs_hit)
    ?(name = "/prod/a") ?(attrs = []) () =
  { Sim.Trace.time; node; kind; name; attrs }

(* --- schema --- *)

let test_kind_round_trip () =
  List.iter
    (fun k ->
      let s = Sim.Trace.kind_to_string k in
      match Sim.Trace.kind_of_string s with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind %s does not round-trip" s)
    all_kinds

let test_kind_names_unique () =
  let names = List.map Sim.Trace.kind_to_string all_kinds in
  Alcotest.(check int) "no duplicate wire names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_kind_of_string_unknown () =
  Alcotest.(check bool) "unknown kind rejected" true
    (Sim.Trace.kind_of_string "cs.frobnicate" = None)

let test_format_of_string () =
  Alcotest.(check bool) "jsonl" true (Sim.Trace.format_of_string "jsonl" = Some Sim.Trace.Jsonl);
  Alcotest.(check bool) "json alias" true (Sim.Trace.format_of_string "json" = Some Sim.Trace.Jsonl);
  Alcotest.(check bool) "csv" true (Sim.Trace.format_of_string "csv" = Some Sim.Trace.Csv);
  Alcotest.(check bool) "garbage" true (Sim.Trace.format_of_string "xml" = None)

(* --- exporters --- *)

let test_jsonl_basic () =
  Alcotest.(check string) "canonical object"
    {|{"time":1.250000,"node":"R","kind":"cs.hit","name":"/prod/a","attrs":{"policy":"lru","count":"3"}}|}
    (Sim.Trace.event_to_jsonl
       (ev ~attrs:[ ("policy", "lru"); ("count", "3") ] ()))

let test_jsonl_escaping () =
  let line =
    Sim.Trace.event_to_jsonl
      (ev ~node:"a\"b\\c" ~name:"/x\n/y" ~attrs:[ ("k\t", "\x01") ] ())
  in
  Alcotest.(check bool) "quote and backslash escaped" true
    (contains line {|"node":"a\"b\\c"|});
  Alcotest.(check bool) "newline escaped" true
    (contains line {|"name":"/x\n/y"|});
  Alcotest.(check bool) "control char as \\u" true
    (contains line {|\u0001|});
  Alcotest.(check bool) "single line" true
    (not (String.contains line '\n'))

let test_csv_basic () =
  Alcotest.(check string) "header" "time,node,kind,name,attrs"
    Sim.Trace.csv_header;
  Alcotest.(check string) "plain row" "1.250000,R,cs.hit,/prod/a,policy=lru"
    (Sim.Trace.event_to_csv (ev ~attrs:[ ("policy", "lru") ] ()))

let test_csv_quoting () =
  let row =
    Sim.Trace.event_to_csv (ev ~node:"a,b" ~name:"say \"hi\"" ~attrs:[] ())
  in
  Alcotest.(check bool) "comma field quoted" true
    (contains row {|"a,b"|});
  Alcotest.(check bool) "quotes doubled" true
    (contains row {|"say ""hi"""|})

let test_render_csv_has_header () =
  let t = Sim.Trace.create () in
  Sim.Trace.emit t (ev ());
  let s = Sim.Trace.render Sim.Trace.Csv t in
  Alcotest.(check bool) "starts with header" true
    (String.length s >= String.length Sim.Trace.csv_header
    && String.sub s 0 (String.length Sim.Trace.csv_header)
       = Sim.Trace.csv_header)

(* --- tracer semantics --- *)

let test_disabled_is_inert () =
  let d = Sim.Trace.disabled in
  Alcotest.(check bool) "not enabled" false (Sim.Trace.enabled d);
  Sim.Trace.emit d (ev ());
  Alcotest.(check int) "emit buffers nothing" 0 (Sim.Trace.length d);
  Sim.Trace.clear d;
  Alcotest.check_raises "subscribe raises"
    (Invalid_argument "Trace.subscribe: tracer is disabled") (fun () ->
      Sim.Trace.subscribe d ignore)

let test_buffering_order () =
  let t = Sim.Trace.create () in
  for i = 0 to 99 do
    Sim.Trace.emit t (ev ~time:(float_of_int i) ())
  done;
  Alcotest.(check int) "length" 100 (Sim.Trace.length t);
  let times = Array.map (fun e -> e.Sim.Trace.time) (Sim.Trace.events t) in
  Alcotest.(check bool) "emission order kept" true
    (times = Array.init 100 float_of_int);
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.length t)

let test_sink_streams () =
  let seen = ref 0 in
  let t = Sim.Trace.with_sink (fun _ -> incr seen) in
  Sim.Trace.emit t (ev ());
  Sim.Trace.emit t (ev ());
  Alcotest.(check int) "sink called per emit" 2 !seen;
  Alcotest.(check int) "nothing buffered" 0 (Sim.Trace.length t)

let test_subscribe_extra_sink () =
  let t = Sim.Trace.create () in
  let seen = ref 0 in
  Sim.Trace.subscribe t (fun _ -> incr seen);
  Sim.Trace.emit t (ev ());
  Alcotest.(check int) "sink saw the event" 1 !seen;
  Alcotest.(check int) "and it is buffered too" 1 (Sim.Trace.length t)

let test_merge_preserves_order () =
  let a = Sim.Trace.create () and b = Sim.Trace.create () in
  Sim.Trace.emit a (ev ~time:1. ~node:"a" ());
  Sim.Trace.emit a (ev ~time:2. ~node:"a" ());
  Sim.Trace.emit b (ev ~time:0.5 ~node:"b" ());
  let into = Sim.Trace.create () in
  Sim.Trace.merge_into ~into a;
  Sim.Trace.merge_into ~into b;
  let nodes =
    Array.to_list
      (Array.map (fun e -> e.Sim.Trace.node) (Sim.Trace.events into))
  in
  (* Trial order, not time order: merge is a concatenation. *)
  Alcotest.(check (list string)) "concatenated in merge order"
    [ "a"; "a"; "b" ] nodes;
  Alcotest.check_raises "merge into disabled raises"
    (Invalid_argument "Trace.merge_into: target tracer is disabled") (fun () ->
      Sim.Trace.merge_into ~into:Sim.Trace.disabled a)

(* --- end-to-end emission from an instrumented probe run --- *)

(* One small LAN probe: U warms /prod/a, Adv probes it.  Mirrors
   `ndnsim probe --warm /prod/a --target /prod/a --trace ...`. *)
let probe_trace ?(seed = 42) () =
  let tracer = Sim.Trace.create () in
  let setup = Ndn.Network.lan ~seed ~tracer () in
  ignore
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user
       (Ndn.Name.of_string "/prod/a"));
  ignore
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net
       ~from:setup.Ndn.Network.adversary ~timeout_ms:1000.
       (Ndn.Name.of_string "/prod/a"));
  tracer

let test_probe_emits_all_layers () =
  let tracer = probe_trace () in
  let kinds =
    Array.fold_left
      (fun acc e -> e.Sim.Trace.kind :: acc)
      [] (Sim.Trace.events tracer)
  in
  let has k = List.mem k kinds in
  Alcotest.(check bool) "engine.step" true (has Sim.Trace.Engine_step);
  Alcotest.(check bool) "interest.recv" true (has Sim.Trace.Interest_received);
  Alcotest.(check bool) "interest.fwd" true (has Sim.Trace.Interest_forwarded);
  Alcotest.(check bool) "data.recv" true (has Sim.Trace.Data_received);
  Alcotest.(check bool) "data.sent" true (has Sim.Trace.Data_sent);
  Alcotest.(check bool) "link.tx" true (has Sim.Trace.Link_transmit);
  Alcotest.(check bool) "cs.insert" true (has Sim.Trace.Cs_insert);
  Alcotest.(check bool) "cs.miss (first fetch)" true (has Sim.Trace.Cs_miss);
  Alcotest.(check bool) "cs.hit (the probe)" true (has Sim.Trace.Cs_hit)

let test_probe_times_monotone () =
  let tracer = probe_trace () in
  let last = ref neg_infinity in
  Sim.Trace.iter tracer (fun e ->
      if e.Sim.Trace.time < !last then
        Alcotest.failf "time went backwards: %f after %f" e.Sim.Trace.time !last;
      last := e.Sim.Trace.time);
  Alcotest.(check bool) "saw events" true (Sim.Trace.length tracer > 0)

let test_tracing_does_not_perturb_results () =
  (* Enabling a tracer must not change the simulation: same seed, same
     RTTs, with and without tracing. *)
  let rtts tracer =
    let setup = Ndn.Network.lan ~seed:7 ~tracer () in
    let fetch from name =
      Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from
        (Ndn.Name.of_string name)
    in
    [
      fetch setup.Ndn.Network.user "/prod/a";
      fetch setup.Ndn.Network.adversary "/prod/a";
      fetch setup.Ndn.Network.adversary "/prod/b";
    ]
  in
  Alcotest.(check bool) "identical RTT streams" true
    (rtts Sim.Trace.disabled = rtts (Sim.Trace.create ()))

let test_tally_and_rate () =
  let tracer = probe_trace () in
  let tally = Sim.Trace.tally tracer in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 tally in
  Alcotest.(check int) "tally counts every event" (Sim.Trace.length tracer)
    total;
  Alcotest.(check bool) "tally keys unique" true
    (let keys = List.map fst tally in
     List.length keys = List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "events_per_ms positive" true
    (Sim.Trace.events_per_ms tracer > 0.)

(* --- determinism: --jobs invariance and the golden trace --- *)

let campaign ~jobs =
  Attack.Timing_experiment.run
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
    ~contents:8 ~runs:4 ~seed:11 ~jobs ~trace:true ()

let test_jobs_invariant_jsonl () =
  let r1 = campaign ~jobs:1 and r4 = campaign ~jobs:4 in
  let t1 = Sim.Trace.render Sim.Trace.Jsonl r1.Attack.Timing_experiment.trace in
  let t4 = Sim.Trace.render Sim.Trace.Jsonl r4.Attack.Timing_experiment.trace in
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 1000);
  Alcotest.(check string) "byte-identical JSONL for --jobs 1 vs --jobs 4" t1 t4

let test_jobs_invariant_csv () =
  let r1 = campaign ~jobs:1 and r3 = campaign ~jobs:3 in
  Alcotest.(check string) "byte-identical CSV for --jobs 1 vs --jobs 3"
    (Sim.Trace.render Sim.Trace.Csv r1.Attack.Timing_experiment.trace)
    (Sim.Trace.render Sim.Trace.Csv r3.Attack.Timing_experiment.trace)

(* Golden trace for the canonical small probe run (LAN, seed 42, warm
   /prod/a then probe it).  The pinned digest is the determinism
   contract: any change to the schema, the formatting, or the
   simulation's event order must update it consciously. *)
let golden_lines = 50
let golden_sha256 =
  "b5a3cd390701d2f9efdfca984e5846bc7a8135f3d1263c00b64094cb19e58a5b"
let golden_first =
  {|{"time":0.000000,"node":"U","kind":"interest.recv","name":"/prod/a","attrs":{"face":"0"}}|}
let golden_last =
  {|{"time":8005.934409,"node":"engine","kind":"engine.step","name":"","attrs":{"depth":"0","processed":"19"}}|}

(* Golden trace for the canonical small attack campaign (LAN, seed 11,
   8 contents x 4 runs — the same campaign the jobs-invariance tests
   run).  Pinned before the zero-allocation heap/name rewrites, this is
   the byte-identity contract that those rewrites are pure
   optimizations: same events, same order, same bytes. *)
let golden_attack_lines = 2688
let golden_attack_sha256 =
  "5aa928689ffe8d6c02bebd078349468c88d8cd17b920c855b79ad900f5d44442"

let test_golden_attack_trace () =
  let rendered =
    Sim.Trace.render Sim.Trace.Jsonl (campaign ~jobs:1).Attack.Timing_experiment.trace
  in
  let lines =
    String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line count" golden_attack_lines (List.length lines);
  Alcotest.(check string) "sha256 of the full attack trace"
    golden_attack_sha256
    (Ndn_crypto.Sha256.hex_digest rendered)

(* The same canonical campaign under --shards 4.  Shard mode orders
   same-time events by (node id, per-node counter) keys rather than the
   legacy single-heap insertion order, so its bytes legitimately differ
   from the legacy golden above — but they must be pinned just as hard:
   one golden per execution mode, and within shard mode the bytes must
   not depend on K (test_shard.ml sweeps K; here we pin K=4 against the
   digest and against a --shards 1 rerun). *)
let campaign_sharded ~shards =
  Attack.Timing_experiment.run
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ~shards ())
    ~contents:8 ~runs:4 ~seed:11 ~jobs:1 ~shards ~trace:true ()

let golden_sharded_attack_lines = 1664
let golden_sharded_attack_sha256 =
  "30ca93bd37efb8391669321567e34cc832e0674558562c9a1b676c07f0aba11a"

let test_golden_sharded_attack_trace () =
  let rendered =
    Sim.Trace.render Sim.Trace.Jsonl
      (campaign_sharded ~shards:4).Attack.Timing_experiment.trace
  in
  let lines =
    String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line count" golden_sharded_attack_lines
    (List.length lines);
  Alcotest.(check string) "sha256 of the sharded attack trace"
    golden_sharded_attack_sha256
    (Ndn_crypto.Sha256.hex_digest rendered);
  Alcotest.(check string) "--shards 4 matches --shards 1"
    (Sim.Trace.render Sim.Trace.Jsonl
       (campaign_sharded ~shards:1).Attack.Timing_experiment.trace)
    rendered

let test_golden_probe_trace () =
  let rendered = Sim.Trace.render Sim.Trace.Jsonl (probe_trace ()) in
  let lines =
    String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line count" golden_lines (List.length lines);
  Alcotest.(check string) "first line" golden_first (List.hd lines);
  Alcotest.(check string) "last line" golden_last
    (List.nth lines (List.length lines - 1));
  Alcotest.(check string) "sha256 of the full trace" golden_sha256
    (Ndn_crypto.Sha256.hex_digest rendered)

(* --- .topo parser: round-trip and error messages --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Resolve fixtures relative to the test binary so the tests pass both
   under `dune runtest` and when the executable is run by hand. *)
let fixture name =
  let candidates =
    [
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat "../examples/topologies" name);
      Filename.concat "../examples/topologies" name;
      Filename.concat "examples/topologies" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> read_file path
  | None -> Alcotest.failf "fixture %s not found" name

let check_fixpoint file =
  match Ndn.Topology_spec.parse_spec (fixture file) with
  | Error e -> Alcotest.failf "%s does not parse: %s" file e
  | Ok spec -> (
    let printed = Ndn.Topology_spec.print spec in
    match Ndn.Topology_spec.parse_spec printed with
    | Error e -> Alcotest.failf "printed %s does not re-parse: %s" file e
    | Ok spec' ->
      Alcotest.(check bool)
        (file ^ ": print/parse round-trips the directives")
        true
        (Ndn.Topology_spec.directives spec
        = Ndn.Topology_spec.directives spec');
      Alcotest.(check string) (file ^ ": print is a fixpoint") printed
        (Ndn.Topology_spec.print spec'))

let test_topo_round_trip_figure1 () = check_fixpoint "figure1.topo"

let test_topo_round_trip_dumbbell () = check_fixpoint "dumbbell.topo"

let test_topo_fixtures_build () =
  List.iter
    (fun file ->
      match Ndn.Topology_spec.parse (fixture file) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s does not build: %s" file e)
    [ "figure1.topo"; "dumbbell.topo" ]

let check_error ~line ~needle text =
  match Ndn.Topology_spec.parse_spec text with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" text
  | Error msg ->
    let prefix = Printf.sprintf "line %d: " line in
    if
      not
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
    then Alcotest.failf "error %S does not carry %S" msg prefix;
    if not (contains msg needle) then
      Alcotest.failf "error %S does not mention %S" msg needle

let test_topo_error_node () =
  check_error ~line:1 ~needle:"node R cs=10000 policy=lru" "node";
  check_error ~line:1 ~needle:"expected a node name before attributes"
    "node cs=5"

let test_topo_error_link () =
  check_error ~line:1 ~needle:"link U R latency=const:1" "link U";
  check_error ~line:1 ~needle:"expected two endpoint names before attributes"
    "link U latency=const:1"

let test_topo_error_route () =
  check_error ~line:1 ~needle:"route U /prod via R" "route U /prod R"

let test_topo_error_unknown_attr () =
  check_error ~line:1 ~needle:"allowed:" "node R colour=red";
  check_error ~line:1 ~needle:"unknown attribute" "node R colour=red"

let test_topo_error_latency () =
  check_error ~line:1 ~needle:"unknown latency model"
    "link U R latency=warp:9"

let test_topo_error_unknown_directive () =
  check_error ~line:1
    ~needle:"expected node, link, route, producer, generate or fault"
    "frobnicate X"

let test_topo_error_loss_range () =
  check_error ~line:1 ~needle:"probability in [0, 1]"
    "link U R latency=const:1 loss=1.5";
  check_error ~line:1 ~needle:"probability in [0, 1]"
    "link U R latency=const:1 loss=-0.1";
  (* The boundaries themselves are legal. *)
  (match Ndn.Topology_spec.parse_spec "node U\nnode R\nlink U R loss=1\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "loss=1 should parse: %s" e);
  match Ndn.Topology_spec.parse_spec "node U\nnode R\nlink U R loss=0\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "loss=0 should parse: %s" e

let test_topo_error_latency_ranges () =
  check_error ~line:1 ~needle:"non-negative" "link U R latency=const:-2";
  check_error ~line:1 ~needle:"hi 1 below lo 3" "link U R latency=uniform:3:1";
  check_error ~line:1 ~needle:"non-negative" "link U R latency=uniform:-1:2";
  check_error ~line:1 ~needle:"non-negative"
    "link U R latency=normal:5:-1:0.5";
  check_error ~line:1 ~needle:"non-negative"
    "node R proc=normal:-5:1:0.5";
  check_error ~line:1 ~needle:"positive"
    "link U R latency=shifted_exp:0.3:0";
  check_error ~line:1 ~needle:"non-negative"
    "link U R latency=shifted_exp:-0.3:2";
  check_error ~line:1 ~needle:"non-negative" "producer P /prod delay=-1"

(* --- fault directives --- *)

let test_topo_fault_parse_and_print () =
  let text =
    "node U\nnode R\nnode P\nlink U R\nlink R P\n\
     fault 120 link_down U R dir=ab\n\
     fault 180 link_up U R dir=ab\n\
     fault 150 degrade R P loss=0.3 latency_factor=2 until=400\n\
     fault 300 crash R preserve_cs=false\n\
     fault 450 restart R\n\
     fault 500 producer_down P until=800\n\
     fault 900 producer_slow P factor=4 until=1200\n"
  in
  match Ndn.Topology_spec.parse_spec text with
  | Error e -> Alcotest.failf "fault spec does not parse: %s" e
  | Ok spec -> (
    let n_faults =
      List.length
        (List.filter
           (function Ndn.Topology_spec.Fault_decl _ -> true | _ -> false)
           (Ndn.Topology_spec.directives spec))
    in
    Alcotest.(check int) "all fault lines parsed" 7 n_faults;
    let printed = Ndn.Topology_spec.print spec in
    match Ndn.Topology_spec.parse_spec printed with
    | Error e -> Alcotest.failf "printed fault spec does not re-parse: %s" e
    | Ok spec' ->
      Alcotest.(check bool) "fault print/parse fixpoint" true
        (Ndn.Topology_spec.directives spec
        = Ndn.Topology_spec.directives spec'))

let test_topo_fault_errors () =
  check_error ~line:1 ~needle:"loss" "fault 10 degrade U R loss=2 until=20";
  check_error ~line:2 ~needle:"" "node U\nfault -5 crash U";
  (* Build-time target validation carries the fault's line number. *)
  match Ndn.Topology_spec.parse "node U\nnode R\nfault 10 crash X\n" with
  | Ok _ -> Alcotest.fail "crash of undeclared node should not build"
  | Error msg ->
    Alcotest.(check bool) "line number" true
      (String.length msg > 8 && String.sub msg 0 8 = "line 3: ");
    Alcotest.(check bool) "names the node" true (contains msg "\"X\"")

let test_topo_fault_builds_and_fires () =
  let text =
    "node U caching=false\nnode R\nnode P\n\
     link U R latency=const:1\nlink R P latency=const:1\n\
     route U /prod via R\nroute R /prod via P\n\
     producer P /prod\n\
     fault 50 crash R\n"
  in
  match Ndn.Topology_spec.parse text with
  | Error e -> Alcotest.failf "does not build: %s" e
  | Ok t ->
    Alcotest.(check int) "schedule exposed" 1
      (List.length t.Ndn.Topology_spec.faults);
    let r = Ndn.Topology_spec.node t "R" in
    Ndn.Network.run t.Ndn.Topology_spec.network;
    Alcotest.(check bool) "crash fired during drain" false
      (Ndn.Node.is_alive r)

let test_topo_error_line_numbers () =
  (* The bad directive sits on line 4 (after a comment and a blank). *)
  check_error ~line:4 ~needle:"node"
    "# topology\n\nnode U\nnode\nnode R\n"

let test_topo_semantic_errors_carry_lines () =
  let check_build ~line ~needle text =
    match Ndn.Topology_spec.parse text with
    | Ok _ -> Alcotest.failf "expected a build error for %S" text
    | Error msg ->
      let prefix = Printf.sprintf "line %d: " line in
      if
        not
          (String.length msg >= String.length prefix
          && String.sub msg 0 (String.length prefix) = prefix)
      then Alcotest.failf "build error %S does not carry %S" msg prefix;
      if not (contains msg needle) then
        Alcotest.failf "build error %S does not mention %S" msg needle
  in
  check_build ~line:2 ~needle:"duplicate node" "node U\nnode U\n";
  check_build ~line:2 ~needle:"undeclared node" "node U\nlink U R\n";
  check_build ~line:3 ~needle:"no such link"
    "node U\nnode R\nroute U /prod via R\n"

(* --- binary wire format (DESIGN §16) --- *)

let tracer_of_events evs =
  let t = Sim.Trace.create () in
  List.iter (Sim.Trace.emit t) evs;
  t

let jsonl_of_events evs =
  String.concat "" (List.map (fun e -> Sim.Trace.event_to_jsonl e ^ "\n") evs)

let decode_binary_exn s =
  let src = Sim.Trace_reader.of_string s in
  match
    Sim.Trace_reader.fold_binary src ~init:[] ~f:(fun acc e -> e :: acc)
  with
  | Ok acc -> List.rev acc
  | Error e ->
    Alcotest.failf "binary decode failed: %s"
      (Sim.Trace_reader.error_to_string e)

let test_binary_format_of_string () =
  Alcotest.(check bool) "binary" true
    (Sim.Trace.format_of_string "binary" = Some Sim.Trace.Binary);
  Alcotest.(check bool) "bin alias" true
    (Sim.Trace.format_of_string "bin" = Some Sim.Trace.Binary);
  Alcotest.(check string) "to_string" "binary"
    (Sim.Trace.format_to_string Sim.Trace.Binary)

let test_kind_ids_are_registry_positions () =
  List.iteri
    (fun i k ->
      Alcotest.(check int)
        (Printf.sprintf "kind_id %s" (Sim.Trace.kind_to_string k))
        i (Sim.Trace.kind_id k);
      match Sim.Trace.kind_of_id i with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind_of_id %d does not invert kind_id" i)
    Sim.Trace.all_kinds;
  Alcotest.(check bool) "out of range" true (Sim.Trace.kind_of_id 999 = None);
  Alcotest.(check bool) "negative" true (Sim.Trace.kind_of_id (-1) = None)

(* One event per registered kind, with out-of-order timestamps (merged
   per-trial streams restart virtual time, so the zigzag delta path
   must handle negative steps), empty and escaped strings, and repeated
   interned strings. *)
let test_binary_round_trip_all_kinds () =
  let evs =
    List.mapi
      (fun i k ->
        ev
          ~time:(float_of_int ((i * 137) mod 400) /. 8.)
          ~node:(Printf.sprintf "node-t%d-n%d" (i mod 3) i)
          ~kind:k
          ~name:
            (if i mod 4 = 0 then ""
             else Printf.sprintf "/prod/run%d/warm/%d" i i)
          ~attrs:
            (if i mod 2 = 0 then
               [ ("delay_ms", "1.25"); ("face", string_of_int i) ]
             else if i mod 5 = 0 then [ ("weird", "a\"b\\c\nd") ]
             else [])
          ())
      Sim.Trace.all_kinds
  in
  let bin = Sim.Trace.render Sim.Trace.Binary (tracer_of_events evs) in
  let decoded = decode_binary_exn bin in
  Alcotest.(check int) "event count" (List.length evs) (List.length decoded);
  Alcotest.(check string) "JSONL rendering identical"
    (jsonl_of_events evs) (jsonl_of_events decoded)

let gen_event =
  QCheck.Gen.(
    let gstr = string_size ~gen:char (int_range 0 12) in
    map
      (fun (time_us, node, kind, name, attrs) ->
        {
          Sim.Trace.time = float_of_int time_us /. 1e6;
          node;
          kind;
          name;
          attrs;
        })
      (tup5
         (int_range 0 1_000_000_000_000)
         gstr
         (oneofl Sim.Trace.all_kinds)
         gstr
         (list_size (int_range 0 4) (pair gstr gstr))))

let arb_events =
  QCheck.make
    ~print:(fun evs -> jsonl_of_events evs)
    QCheck.Gen.(list_size (int_range 0 40) gen_event)

let qcheck_binary_round_trip =
  QCheck.Test.make ~name:"binary encode/decode = identity (vs JSONL rendering)"
    ~count:300 arb_events (fun evs ->
      let bin = Sim.Trace.render Sim.Trace.Binary (tracer_of_events evs) in
      let decoded = decode_binary_exn bin in
      jsonl_of_events decoded = jsonl_of_events evs)

let qcheck_jsonl_reader_round_trip =
  QCheck.Test.make ~name:"jsonl parse (event_to_jsonl e) re-renders to e"
    ~count:300 arb_events (fun evs ->
      let src = Sim.Trace_reader.of_string (jsonl_of_events evs) in
      match
        Sim.Trace_reader.fold_jsonl src ~init:[] ~f:(fun acc e -> e :: acc)
      with
      | Error e ->
        QCheck.Test.fail_reportf "jsonl parse failed: %s"
          (Sim.Trace_reader.error_to_string e)
      | Ok parsed -> jsonl_of_events (List.rev parsed) = jsonl_of_events evs)

let test_binary_incremental_encoder () =
  let evs = Array.to_list (Sim.Trace.events (probe_trace ())) in
  let enc = Sim.Trace.encoder_create () in
  Sim.Trace.encoder_add_header enc;
  List.iter (Sim.Trace.encode_event enc) evs;
  Alcotest.(check int) "encoder_length" (String.length (Sim.Trace.encoder_contents enc))
    (Sim.Trace.encoder_length enc);
  Alcotest.(check string) "incremental = one-shot render"
    (Sim.Trace.render Sim.Trace.Binary (tracer_of_events evs))
    (Sim.Trace.encoder_contents enc);
  (* reset reuses capacity but restarts the stream state *)
  Sim.Trace.encoder_reset enc;
  Sim.Trace.encoder_add_header enc;
  List.iter (Sim.Trace.encode_event enc) evs;
  Alcotest.(check string) "re-encoding after reset is identical"
    (Sim.Trace.render Sim.Trace.Binary (tracer_of_events evs))
    (Sim.Trace.encoder_contents enc)

let test_binary_write_matches_render () =
  let tr = (campaign ~jobs:1).Attack.Timing_experiment.trace in
  let path = Filename.temp_file "trace" ".bin" in
  let oc = open_out_bin path in
  Sim.Trace.write Sim.Trace.Binary oc tr;
  close_out oc;
  let written = read_file path in
  Sys.remove path;
  Alcotest.(check int) "chunked write length"
    (String.length (Sim.Trace.render Sim.Trace.Binary tr))
    (String.length written);
  Alcotest.(check bool) "chunked write = render" true
    (written = Sim.Trace.render Sim.Trace.Binary tr)

(* Golden binary probe fixture: byte length + digest of the canonical
   probe run's binary trace.  Catches silent format drift the same way
   the JSONL golden does; bump [Trace.binary_version] when changing
   the wire layout, and update this fixture consciously. *)
let golden_binary_bytes = 1248
let golden_binary_sha256 =
  "2cd404634356838a4d34651b89088a0165a65893361fd7320c7c88c6748ae539"

let test_golden_binary_probe_trace () =
  let bin = Sim.Trace.render Sim.Trace.Binary (probe_trace ()) in
  Alcotest.(check int) "byte length" golden_binary_bytes (String.length bin);
  Alcotest.(check string) "sha256 of the binary trace" golden_binary_sha256
    (Ndn_crypto.Sha256.hex_digest bin);
  (* and it decodes to exactly the golden JSONL trace *)
  Alcotest.(check string) "decodes to the golden JSONL"
    (Sim.Trace.render Sim.Trace.Jsonl (probe_trace ()))
    (jsonl_of_events (decode_binary_exn bin))

(* --- truncation / corruption robustness --- *)

let check_decode_error ~needle s =
  let src = Sim.Trace_reader.of_string s in
  match Sim.Trace_reader.fold_binary src ~init:0 ~f:(fun n _ -> n + 1) with
  | Ok _ -> Alcotest.failf "expected a decode error mentioning %S" needle
  | Error e ->
    let msg = Sim.Trace_reader.error_to_string e in
    if not (contains msg needle) then
      Alcotest.failf "error %S does not mention %S" msg needle;
    (match e.Sim.Trace_reader.position with
    | Sim.Trace_reader.Byte n ->
      if n < 0 then Alcotest.failf "negative byte offset in %S" msg
    | Sim.Trace_reader.Line _ ->
      Alcotest.failf "expected a byte-positioned error, got %S" msg)

(* magic + version + registry snapshot, no records *)
let header_only = Sim.Trace.render Sim.Trace.Binary (Sim.Trace.create ())

let test_binary_bad_magic () =
  check_decode_error ~needle:"bad magic" ("XXXXXXXX" ^ header_only);
  check_decode_error ~needle:"empty stream" "";
  check_decode_error ~needle:"shorter than the 8-byte magic" "ndntr"

let test_binary_version_mismatch () =
  let bumped =
    String.mapi (fun i c -> if i = 8 then '\x63' else c) header_only
  in
  check_decode_error ~needle:"unsupported binary trace version 99" bumped

let test_binary_truncation () =
  (* record claims 5 payload bytes, stream provides 1 *)
  check_decode_error ~needle:"record truncated" (header_only ^ "\x05\x02");
  (* stream ends inside the record-length varint *)
  check_decode_error ~needle:"ends inside the varint" (header_only ^ "\x80");
  (* the golden probe trace cut mid-record *)
  let bin = Sim.Trace.render Sim.Trace.Binary (probe_trace ()) in
  check_decode_error ~needle:"truncated"
    (String.sub bin 0 (String.length bin - 3))

let test_binary_bad_varint () =
  check_decode_error ~needle:"exceeds 9 bytes"
    (header_only ^ "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80")

let test_binary_framing_violations () =
  (* unknown record tag *)
  check_decode_error ~needle:"unknown record tag" (header_only ^ "\x01\x7f");
  (* event referencing an undefined string *)
  check_decode_error ~needle:"references string #0"
    (header_only ^ "\x06\x02\x00\x00\x00\x00\x00");
  (* string definition with an out-of-order id *)
  check_decode_error ~needle:"out of order" (header_only ^ "\x04\x01\x05\x01a");
  (* kind id beyond the registry snapshot *)
  check_decode_error ~needle:"outside the registry snapshot"
    (header_only ^ "\x07\x02\xc8\x01\x00\x00\x00\x00")

let test_detect_and_auto () =
  let bin = Sim.Trace.render Sim.Trace.Binary (probe_trace ()) in
  let js = Sim.Trace.render Sim.Trace.Jsonl (probe_trace ()) in
  let detect s = Sim.Trace_reader.detect (Sim.Trace_reader.of_string s) in
  Alcotest.(check bool) "binary detected" true
    (detect bin = Sim.Trace_reader.Binary);
  Alcotest.(check bool) "jsonl detected" true
    (detect js = Sim.Trace_reader.Jsonl);
  Alcotest.(check bool) "csv detected" true
    (detect "time,node,kind,name,attrs\n" = Sim.Trace_reader.Csv);
  (match
     Sim.Trace_reader.fold_auto
       (Sim.Trace_reader.of_string "time,node,kind,name,attrs\n")
       ~init:() ~f:(fun () _ -> ())
   with
  | Ok () -> Alcotest.fail "CSV must be rejected"
  | Error e ->
    Alcotest.(check bool) "actionable CSV rejection" true
      (contains (Sim.Trace_reader.error_to_string e) "--trace-format binary"));
  let count s =
    match
      Sim.Trace_reader.fold_auto (Sim.Trace_reader.of_string s) ~init:0
        ~f:(fun n _ -> n + 1)
    with
    | Ok n -> n
    | Error e ->
      Alcotest.failf "fold_auto failed: %s" (Sim.Trace_reader.error_to_string e)
  in
  Alcotest.(check int) "auto binary count" golden_lines (count bin);
  Alcotest.(check int) "auto jsonl count" golden_lines (count js)

let test_reader_channel_source () =
  (* the chunked channel path (64 KiB windows + compaction) agrees with
     the in-memory path on a trace larger than one window *)
  let tr = (campaign ~jobs:1).Attack.Timing_experiment.trace in
  let bin = Sim.Trace.render Sim.Trace.Binary tr in
  let path = Filename.temp_file "trace" ".bin" in
  let oc = open_out_bin path in
  output_string oc bin;
  close_out oc;
  let ic = open_in_bin path in
  let via_channel =
    match
      Sim.Trace_reader.fold_binary
        (Sim.Trace_reader.of_channel ic)
        ~init:[] ~f:(fun acc e -> e :: acc)
    with
    | Ok acc -> List.rev acc
    | Error e ->
      Alcotest.failf "channel decode failed: %s"
        (Sim.Trace_reader.error_to_string e)
  in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "channel fold = string fold"
    (jsonl_of_events (decode_binary_exn bin))
    (jsonl_of_events via_channel)

(* --- streaming analyzers --- *)

let analyze_exn s =
  match Sim.Analyze.of_source (Sim.Trace_reader.of_string s) with
  | Ok t -> t
  | Error e ->
    Alcotest.failf "analyze failed: %s" (Sim.Trace_reader.error_to_string e)

let test_analyze_binary_equals_jsonl () =
  let tr = (campaign ~jobs:1).Attack.Timing_experiment.trace in
  let sb = Sim.Analyze.render_json (analyze_exn (Sim.Trace.render Sim.Trace.Binary tr)) in
  let sj = Sim.Analyze.render_json (analyze_exn (Sim.Trace.render Sim.Trace.Jsonl tr)) in
  Alcotest.(check string) "binary and JSONL summaries bit-identical" sb sj;
  (* and both equal feeding the live tracer directly *)
  let live = Sim.Analyze.create () in
  Sim.Trace.iter tr (Sim.Analyze.feed live);
  Alcotest.(check string) "live feed matches" (Sim.Analyze.render_json live) sb;
  Alcotest.(check bool) "attack matrix present" true (contains sb "\"attack\": {")

let test_analyze_attack_numbers () =
  let tr = (campaign ~jobs:1).Attack.Timing_experiment.trace in
  let t = analyze_exn (Sim.Trace.render Sim.Trace.Binary tr) in
  match Sim.Analyze.attack t with
  | None -> Alcotest.fail "no attack matrix found in the campaign trace"
  | Some a ->
    (* 8 contents x 4 runs, one warm and one cold probe each *)
    Alcotest.(check int) "warm probes" 32 a.Sim.Analyze.warm;
    Alcotest.(check int) "cold probes" 32 a.Sim.Analyze.cold;
    Alcotest.(check bool) "tpr in [0,1]" true
      (a.Sim.Analyze.tpr >= 0. && a.Sim.Analyze.tpr <= 1.);
    Alcotest.(check bool) "accuracy in [0,1]" true
      (a.Sim.Analyze.accuracy >= 0. && a.Sim.Analyze.accuracy <= 1.);
    (* an undefended LAN leaks: warm probes hit, cold probes miss *)
    Alcotest.(check bool) "accuracy above chance" true
      (a.Sim.Analyze.accuracy > 0.5)

let test_analyze_sharded_matches () =
  (* Shard stitching orders same-time events by (node id, counter); the
     binary writer must observe that stitched order identically for any
     K — same bytes, and a fortiori the same analyzer summary. *)
  let b1 =
    Sim.Trace.render Sim.Trace.Binary
      (campaign_sharded ~shards:1).Attack.Timing_experiment.trace
  in
  let b4 =
    Sim.Trace.render Sim.Trace.Binary
      (campaign_sharded ~shards:4).Attack.Timing_experiment.trace
  in
  Alcotest.(check bool) "binary bytes identical across --shards K" true (b1 = b4);
  Alcotest.(check string) "analyzer summaries identical across --shards K"
    (Sim.Analyze.render_json (analyze_exn b1))
    (Sim.Analyze.render_json (analyze_exn b4))

let check_merge_law evs k =
  let whole = Sim.Analyze.create () in
  List.iter (Sim.Analyze.feed whole) evs;
  let a = Sim.Analyze.create () and b = Sim.Analyze.create () in
  List.iteri (fun i e -> Sim.Analyze.feed (if i < k then a else b) e) evs;
  let m = Sim.Analyze.merge a b in
  Alcotest.(check int) "events" (Sim.Analyze.events whole) (Sim.Analyze.events m);
  Alcotest.(check int) "span_us" (Sim.Analyze.span_us whole) (Sim.Analyze.span_us m);
  Alcotest.(check int) "nodes" (Sim.Analyze.distinct_nodes whole)
    (Sim.Analyze.distinct_nodes m);
  Alcotest.(check int) "names" (Sim.Analyze.distinct_names whole)
    (Sim.Analyze.distinct_names m);
  List.iter
    (fun kind ->
      Alcotest.(check int)
        (Printf.sprintf "count %s" (Sim.Trace.kind_to_string kind))
        (Sim.Analyze.kind_count whole kind)
        (Sim.Analyze.kind_count m kind))
    Sim.Trace.all_kinds;
  Alcotest.(check bool) "attack matrices equal" true
    (Sim.Analyze.attack whole = Sim.Analyze.attack m);
  Alcotest.(check bool) "tier rows equal" true
    (Sim.Analyze.tiers whole = Sim.Analyze.tiers m);
  Alcotest.(check bool) "histograms equal" true
    (Sim.Histogram.equal (Sim.Analyze.delay_hist whole) (Sim.Analyze.delay_hist m));
  Alcotest.(check int) "delay count"
    (Sim.Stats.count (Sim.Analyze.delay whole))
    (Sim.Stats.count (Sim.Analyze.delay m));
  (* the parallel Welford merge reassociates float additions, so the
     moments agree to tolerance rather than bit-for-bit *)
  if Sim.Stats.count (Sim.Analyze.delay whole) > 0 then begin
    Alcotest.(check (float 1e-9)) "delay mean"
      (Sim.Stats.mean (Sim.Analyze.delay whole))
      (Sim.Stats.mean (Sim.Analyze.delay m));
    if Sim.Stats.count (Sim.Analyze.delay whole) > 1 then
      Alcotest.(check (float 1e-9)) "delay stddev"
        (Sim.Stats.stddev (Sim.Analyze.delay whole))
        (Sim.Stats.stddev (Sim.Analyze.delay m))
  end

let test_analyze_merge_law () =
  let evs =
    Array.to_list
      (Sim.Trace.events (campaign ~jobs:1).Attack.Timing_experiment.trace)
  in
  let n = List.length evs in
  List.iter (check_merge_law evs) [ 0; 1; n / 3; n / 2; n - 1; n ]

let qcheck_analyze_merge_law =
  QCheck.Test.make ~name:"analyzer split-feed-merge = whole-feed" ~count:50
    QCheck.(pair arb_events (int_range 0 1000))
    (fun (evs, cut) ->
      let k = if evs = [] then 0 else cut mod (List.length evs + 1) in
      let whole = Sim.Analyze.create () in
      List.iter (Sim.Analyze.feed whole) evs;
      let a = Sim.Analyze.create () and b = Sim.Analyze.create () in
      List.iteri (fun i e -> Sim.Analyze.feed (if i < k then a else b) e) evs;
      let m = Sim.Analyze.merge a b in
      Sim.Analyze.events whole = Sim.Analyze.events m
      && Sim.Analyze.attack whole = Sim.Analyze.attack m
      && Sim.Analyze.tiers whole = Sim.Analyze.tiers m
      && Sim.Histogram.equal (Sim.Analyze.delay_hist whole)
           (Sim.Analyze.delay_hist m)
      && List.for_all
           (fun kind ->
             Sim.Analyze.kind_count whole kind = Sim.Analyze.kind_count m kind)
           Sim.Trace.all_kinds)

let () =
  Alcotest.run "trace"
    [
      ( "schema",
        [
          Alcotest.test_case "kind round-trip" `Quick test_kind_round_trip;
          Alcotest.test_case "kind names unique" `Quick test_kind_names_unique;
          Alcotest.test_case "unknown kind" `Quick test_kind_of_string_unknown;
          Alcotest.test_case "format_of_string" `Quick test_format_of_string;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl basic" `Quick test_jsonl_basic;
          Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
          Alcotest.test_case "csv basic" `Quick test_csv_basic;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
          Alcotest.test_case "csv render header" `Quick
            test_render_csv_has_header;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "buffering order" `Quick test_buffering_order;
          Alcotest.test_case "sink streams" `Quick test_sink_streams;
          Alcotest.test_case "subscribe" `Quick test_subscribe_extra_sink;
          Alcotest.test_case "merge order" `Quick test_merge_preserves_order;
        ] );
      ( "emission",
        [
          Alcotest.test_case "probe covers all layers" `Quick
            test_probe_emits_all_layers;
          Alcotest.test_case "times monotone" `Quick test_probe_times_monotone;
          Alcotest.test_case "tracing does not perturb results" `Quick
            test_tracing_does_not_perturb_results;
          Alcotest.test_case "tally and rate" `Quick test_tally_and_rate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-invariant jsonl" `Slow
            test_jobs_invariant_jsonl;
          Alcotest.test_case "jobs-invariant csv" `Slow test_jobs_invariant_csv;
          Alcotest.test_case "golden probe trace" `Quick
            test_golden_probe_trace;
          Alcotest.test_case "golden attack trace" `Slow
            test_golden_attack_trace;
          Alcotest.test_case "golden sharded attack trace" `Slow
            test_golden_sharded_attack_trace;
        ] );
      ( "topo",
        [
          Alcotest.test_case "round-trip figure1" `Quick
            test_topo_round_trip_figure1;
          Alcotest.test_case "round-trip dumbbell" `Quick
            test_topo_round_trip_dumbbell;
          Alcotest.test_case "fixtures build" `Quick test_topo_fixtures_build;
          Alcotest.test_case "node errors" `Quick test_topo_error_node;
          Alcotest.test_case "link errors" `Quick test_topo_error_link;
          Alcotest.test_case "route errors" `Quick test_topo_error_route;
          Alcotest.test_case "unknown attribute" `Quick
            test_topo_error_unknown_attr;
          Alcotest.test_case "latency errors" `Quick test_topo_error_latency;
          Alcotest.test_case "loss range" `Quick test_topo_error_loss_range;
          Alcotest.test_case "latency parameter ranges" `Quick
            test_topo_error_latency_ranges;
          Alcotest.test_case "fault parse and print" `Quick
            test_topo_fault_parse_and_print;
          Alcotest.test_case "fault errors" `Quick test_topo_fault_errors;
          Alcotest.test_case "fault builds and fires" `Quick
            test_topo_fault_builds_and_fires;
          Alcotest.test_case "unknown directive" `Quick
            test_topo_error_unknown_directive;
          Alcotest.test_case "line numbers" `Quick
            test_topo_error_line_numbers;
          Alcotest.test_case "semantic errors carry lines" `Quick
            test_topo_semantic_errors_carry_lines;
        ] );
      ( "binary",
        [
          Alcotest.test_case "format_of_string binary" `Quick
            test_binary_format_of_string;
          Alcotest.test_case "kind ids = registry positions" `Quick
            test_kind_ids_are_registry_positions;
          Alcotest.test_case "round-trip all kinds" `Quick
            test_binary_round_trip_all_kinds;
          Alcotest.test_case "incremental encoder" `Quick
            test_binary_incremental_encoder;
          Alcotest.test_case "write = render" `Slow
            test_binary_write_matches_render;
          Alcotest.test_case "golden binary probe trace" `Quick
            test_golden_binary_probe_trace;
          Alcotest.test_case "bad magic" `Quick test_binary_bad_magic;
          Alcotest.test_case "version mismatch" `Quick
            test_binary_version_mismatch;
          Alcotest.test_case "truncation" `Quick test_binary_truncation;
          Alcotest.test_case "bad varint" `Quick test_binary_bad_varint;
          Alcotest.test_case "framing violations" `Quick
            test_binary_framing_violations;
          Alcotest.test_case "detect and fold_auto" `Quick test_detect_and_auto;
          Alcotest.test_case "channel source" `Slow test_reader_channel_source;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "binary = jsonl bit-for-bit" `Slow
            test_analyze_binary_equals_jsonl;
          Alcotest.test_case "attack confusion matrix" `Slow
            test_analyze_attack_numbers;
          Alcotest.test_case "sharded analyzer matches" `Slow
            test_analyze_sharded_matches;
          Alcotest.test_case "merge law on campaign" `Slow
            test_analyze_merge_law;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_binary_round_trip;
            qcheck_jsonl_reader_round_trip;
            qcheck_analyze_merge_law;
          ] );
    ]
