(* Tests for the Sim.Trace observability subsystem: schema round-trips,
   exporter formatting and escaping, buffering/sink semantics, the
   end-to-end emission coverage of an instrumented probe run, topology
   round-trips through the .topo printer, and the determinism
   guarantees (--jobs invariance, golden trace). *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0

let all_kinds =
  [
    Sim.Trace.Engine_step;
    Cs_hit;
    Cs_miss;
    Cs_insert;
    Cs_evict;
    Cs_expire;
    Interest_received;
    Interest_forwarded;
    Interest_collapsed;
    Data_received;
    Data_sent;
    Pit_timeout;
    Link_transmit;
    Link_drop;
    Rc_draw;
    Rc_fake_miss;
    Rc_hit;
    Cs_flush;
    Fault_link;
    Fault_crash;
    Fault_restart;
    Fault_producer;
  ]

let ev ?(time = 1.25) ?(node = "R") ?(kind = Sim.Trace.Cs_hit)
    ?(name = "/prod/a") ?(attrs = []) () =
  { Sim.Trace.time; node; kind; name; attrs }

(* --- schema --- *)

let test_kind_round_trip () =
  List.iter
    (fun k ->
      let s = Sim.Trace.kind_to_string k in
      match Sim.Trace.kind_of_string s with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind %s does not round-trip" s)
    all_kinds

let test_kind_names_unique () =
  let names = List.map Sim.Trace.kind_to_string all_kinds in
  Alcotest.(check int) "no duplicate wire names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_kind_of_string_unknown () =
  Alcotest.(check bool) "unknown kind rejected" true
    (Sim.Trace.kind_of_string "cs.frobnicate" = None)

let test_format_of_string () =
  Alcotest.(check bool) "jsonl" true (Sim.Trace.format_of_string "jsonl" = Some Sim.Trace.Jsonl);
  Alcotest.(check bool) "json alias" true (Sim.Trace.format_of_string "json" = Some Sim.Trace.Jsonl);
  Alcotest.(check bool) "csv" true (Sim.Trace.format_of_string "csv" = Some Sim.Trace.Csv);
  Alcotest.(check bool) "garbage" true (Sim.Trace.format_of_string "xml" = None)

(* --- exporters --- *)

let test_jsonl_basic () =
  Alcotest.(check string) "canonical object"
    {|{"time":1.250000,"node":"R","kind":"cs.hit","name":"/prod/a","attrs":{"policy":"lru","count":"3"}}|}
    (Sim.Trace.event_to_jsonl
       (ev ~attrs:[ ("policy", "lru"); ("count", "3") ] ()))

let test_jsonl_escaping () =
  let line =
    Sim.Trace.event_to_jsonl
      (ev ~node:"a\"b\\c" ~name:"/x\n/y" ~attrs:[ ("k\t", "\x01") ] ())
  in
  Alcotest.(check bool) "quote and backslash escaped" true
    (contains line {|"node":"a\"b\\c"|});
  Alcotest.(check bool) "newline escaped" true
    (contains line {|"name":"/x\n/y"|});
  Alcotest.(check bool) "control char as \\u" true
    (contains line {|\u0001|});
  Alcotest.(check bool) "single line" true
    (not (String.contains line '\n'))

let test_csv_basic () =
  Alcotest.(check string) "header" "time,node,kind,name,attrs"
    Sim.Trace.csv_header;
  Alcotest.(check string) "plain row" "1.250000,R,cs.hit,/prod/a,policy=lru"
    (Sim.Trace.event_to_csv (ev ~attrs:[ ("policy", "lru") ] ()))

let test_csv_quoting () =
  let row =
    Sim.Trace.event_to_csv (ev ~node:"a,b" ~name:"say \"hi\"" ~attrs:[] ())
  in
  Alcotest.(check bool) "comma field quoted" true
    (contains row {|"a,b"|});
  Alcotest.(check bool) "quotes doubled" true
    (contains row {|"say ""hi"""|})

let test_render_csv_has_header () =
  let t = Sim.Trace.create () in
  Sim.Trace.emit t (ev ());
  let s = Sim.Trace.render Sim.Trace.Csv t in
  Alcotest.(check bool) "starts with header" true
    (String.length s >= String.length Sim.Trace.csv_header
    && String.sub s 0 (String.length Sim.Trace.csv_header)
       = Sim.Trace.csv_header)

(* --- tracer semantics --- *)

let test_disabled_is_inert () =
  let d = Sim.Trace.disabled in
  Alcotest.(check bool) "not enabled" false (Sim.Trace.enabled d);
  Sim.Trace.emit d (ev ());
  Alcotest.(check int) "emit buffers nothing" 0 (Sim.Trace.length d);
  Sim.Trace.clear d;
  Alcotest.check_raises "subscribe raises"
    (Invalid_argument "Trace.subscribe: tracer is disabled") (fun () ->
      Sim.Trace.subscribe d ignore)

let test_buffering_order () =
  let t = Sim.Trace.create () in
  for i = 0 to 99 do
    Sim.Trace.emit t (ev ~time:(float_of_int i) ())
  done;
  Alcotest.(check int) "length" 100 (Sim.Trace.length t);
  let times = Array.map (fun e -> e.Sim.Trace.time) (Sim.Trace.events t) in
  Alcotest.(check bool) "emission order kept" true
    (times = Array.init 100 float_of_int);
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.length t)

let test_sink_streams () =
  let seen = ref 0 in
  let t = Sim.Trace.with_sink (fun _ -> incr seen) in
  Sim.Trace.emit t (ev ());
  Sim.Trace.emit t (ev ());
  Alcotest.(check int) "sink called per emit" 2 !seen;
  Alcotest.(check int) "nothing buffered" 0 (Sim.Trace.length t)

let test_subscribe_extra_sink () =
  let t = Sim.Trace.create () in
  let seen = ref 0 in
  Sim.Trace.subscribe t (fun _ -> incr seen);
  Sim.Trace.emit t (ev ());
  Alcotest.(check int) "sink saw the event" 1 !seen;
  Alcotest.(check int) "and it is buffered too" 1 (Sim.Trace.length t)

let test_merge_preserves_order () =
  let a = Sim.Trace.create () and b = Sim.Trace.create () in
  Sim.Trace.emit a (ev ~time:1. ~node:"a" ());
  Sim.Trace.emit a (ev ~time:2. ~node:"a" ());
  Sim.Trace.emit b (ev ~time:0.5 ~node:"b" ());
  let into = Sim.Trace.create () in
  Sim.Trace.merge_into ~into a;
  Sim.Trace.merge_into ~into b;
  let nodes =
    Array.to_list
      (Array.map (fun e -> e.Sim.Trace.node) (Sim.Trace.events into))
  in
  (* Trial order, not time order: merge is a concatenation. *)
  Alcotest.(check (list string)) "concatenated in merge order"
    [ "a"; "a"; "b" ] nodes;
  Alcotest.check_raises "merge into disabled raises"
    (Invalid_argument "Trace.merge_into: target tracer is disabled") (fun () ->
      Sim.Trace.merge_into ~into:Sim.Trace.disabled a)

(* --- end-to-end emission from an instrumented probe run --- *)

(* One small LAN probe: U warms /prod/a, Adv probes it.  Mirrors
   `ndnsim probe --warm /prod/a --target /prod/a --trace ...`. *)
let probe_trace ?(seed = 42) () =
  let tracer = Sim.Trace.create () in
  let setup = Ndn.Network.lan ~seed ~tracer () in
  ignore
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user
       (Ndn.Name.of_string "/prod/a"));
  ignore
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net
       ~from:setup.Ndn.Network.adversary ~timeout_ms:1000.
       (Ndn.Name.of_string "/prod/a"));
  tracer

let test_probe_emits_all_layers () =
  let tracer = probe_trace () in
  let kinds =
    Array.fold_left
      (fun acc e -> e.Sim.Trace.kind :: acc)
      [] (Sim.Trace.events tracer)
  in
  let has k = List.mem k kinds in
  Alcotest.(check bool) "engine.step" true (has Sim.Trace.Engine_step);
  Alcotest.(check bool) "interest.recv" true (has Sim.Trace.Interest_received);
  Alcotest.(check bool) "interest.fwd" true (has Sim.Trace.Interest_forwarded);
  Alcotest.(check bool) "data.recv" true (has Sim.Trace.Data_received);
  Alcotest.(check bool) "data.sent" true (has Sim.Trace.Data_sent);
  Alcotest.(check bool) "link.tx" true (has Sim.Trace.Link_transmit);
  Alcotest.(check bool) "cs.insert" true (has Sim.Trace.Cs_insert);
  Alcotest.(check bool) "cs.miss (first fetch)" true (has Sim.Trace.Cs_miss);
  Alcotest.(check bool) "cs.hit (the probe)" true (has Sim.Trace.Cs_hit)

let test_probe_times_monotone () =
  let tracer = probe_trace () in
  let last = ref neg_infinity in
  Sim.Trace.iter tracer (fun e ->
      if e.Sim.Trace.time < !last then
        Alcotest.failf "time went backwards: %f after %f" e.Sim.Trace.time !last;
      last := e.Sim.Trace.time);
  Alcotest.(check bool) "saw events" true (Sim.Trace.length tracer > 0)

let test_tracing_does_not_perturb_results () =
  (* Enabling a tracer must not change the simulation: same seed, same
     RTTs, with and without tracing. *)
  let rtts tracer =
    let setup = Ndn.Network.lan ~seed:7 ~tracer () in
    let fetch from name =
      Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from
        (Ndn.Name.of_string name)
    in
    [
      fetch setup.Ndn.Network.user "/prod/a";
      fetch setup.Ndn.Network.adversary "/prod/a";
      fetch setup.Ndn.Network.adversary "/prod/b";
    ]
  in
  Alcotest.(check bool) "identical RTT streams" true
    (rtts Sim.Trace.disabled = rtts (Sim.Trace.create ()))

let test_tally_and_rate () =
  let tracer = probe_trace () in
  let tally = Sim.Trace.tally tracer in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 tally in
  Alcotest.(check int) "tally counts every event" (Sim.Trace.length tracer)
    total;
  Alcotest.(check bool) "tally keys unique" true
    (let keys = List.map fst tally in
     List.length keys = List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "events_per_ms positive" true
    (Sim.Trace.events_per_ms tracer > 0.)

(* --- determinism: --jobs invariance and the golden trace --- *)

let campaign ~jobs =
  Attack.Timing_experiment.run
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
    ~contents:8 ~runs:4 ~seed:11 ~jobs ~trace:true ()

let test_jobs_invariant_jsonl () =
  let r1 = campaign ~jobs:1 and r4 = campaign ~jobs:4 in
  let t1 = Sim.Trace.render Sim.Trace.Jsonl r1.Attack.Timing_experiment.trace in
  let t4 = Sim.Trace.render Sim.Trace.Jsonl r4.Attack.Timing_experiment.trace in
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 1000);
  Alcotest.(check string) "byte-identical JSONL for --jobs 1 vs --jobs 4" t1 t4

let test_jobs_invariant_csv () =
  let r1 = campaign ~jobs:1 and r3 = campaign ~jobs:3 in
  Alcotest.(check string) "byte-identical CSV for --jobs 1 vs --jobs 3"
    (Sim.Trace.render Sim.Trace.Csv r1.Attack.Timing_experiment.trace)
    (Sim.Trace.render Sim.Trace.Csv r3.Attack.Timing_experiment.trace)

(* Golden trace for the canonical small probe run (LAN, seed 42, warm
   /prod/a then probe it).  The pinned digest is the determinism
   contract: any change to the schema, the formatting, or the
   simulation's event order must update it consciously. *)
let golden_lines = 50
let golden_sha256 =
  "b5a3cd390701d2f9efdfca984e5846bc7a8135f3d1263c00b64094cb19e58a5b"
let golden_first =
  {|{"time":0.000000,"node":"U","kind":"interest.recv","name":"/prod/a","attrs":{"face":"0"}}|}
let golden_last =
  {|{"time":8005.934409,"node":"engine","kind":"engine.step","name":"","attrs":{"depth":"0","processed":"19"}}|}

(* Golden trace for the canonical small attack campaign (LAN, seed 11,
   8 contents x 4 runs — the same campaign the jobs-invariance tests
   run).  Pinned before the zero-allocation heap/name rewrites, this is
   the byte-identity contract that those rewrites are pure
   optimizations: same events, same order, same bytes. *)
let golden_attack_lines = 2688
let golden_attack_sha256 =
  "5aa928689ffe8d6c02bebd078349468c88d8cd17b920c855b79ad900f5d44442"

let test_golden_attack_trace () =
  let rendered =
    Sim.Trace.render Sim.Trace.Jsonl (campaign ~jobs:1).Attack.Timing_experiment.trace
  in
  let lines =
    String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line count" golden_attack_lines (List.length lines);
  Alcotest.(check string) "sha256 of the full attack trace"
    golden_attack_sha256
    (Ndn_crypto.Sha256.hex_digest rendered)

(* The same canonical campaign under --shards 4.  Shard mode orders
   same-time events by (node id, per-node counter) keys rather than the
   legacy single-heap insertion order, so its bytes legitimately differ
   from the legacy golden above — but they must be pinned just as hard:
   one golden per execution mode, and within shard mode the bytes must
   not depend on K (test_shard.ml sweeps K; here we pin K=4 against the
   digest and against a --shards 1 rerun). *)
let campaign_sharded ~shards =
  Attack.Timing_experiment.run
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ~shards ())
    ~contents:8 ~runs:4 ~seed:11 ~jobs:1 ~shards ~trace:true ()

let golden_sharded_attack_lines = 1664
let golden_sharded_attack_sha256 =
  "30ca93bd37efb8391669321567e34cc832e0674558562c9a1b676c07f0aba11a"

let test_golden_sharded_attack_trace () =
  let rendered =
    Sim.Trace.render Sim.Trace.Jsonl
      (campaign_sharded ~shards:4).Attack.Timing_experiment.trace
  in
  let lines =
    String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line count" golden_sharded_attack_lines
    (List.length lines);
  Alcotest.(check string) "sha256 of the sharded attack trace"
    golden_sharded_attack_sha256
    (Ndn_crypto.Sha256.hex_digest rendered);
  Alcotest.(check string) "--shards 4 matches --shards 1"
    (Sim.Trace.render Sim.Trace.Jsonl
       (campaign_sharded ~shards:1).Attack.Timing_experiment.trace)
    rendered

let test_golden_probe_trace () =
  let rendered = Sim.Trace.render Sim.Trace.Jsonl (probe_trace ()) in
  let lines =
    String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line count" golden_lines (List.length lines);
  Alcotest.(check string) "first line" golden_first (List.hd lines);
  Alcotest.(check string) "last line" golden_last
    (List.nth lines (List.length lines - 1));
  Alcotest.(check string) "sha256 of the full trace" golden_sha256
    (Ndn_crypto.Sha256.hex_digest rendered)

(* --- .topo parser: round-trip and error messages --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Resolve fixtures relative to the test binary so the tests pass both
   under `dune runtest` and when the executable is run by hand. *)
let fixture name =
  let candidates =
    [
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat "../examples/topologies" name);
      Filename.concat "../examples/topologies" name;
      Filename.concat "examples/topologies" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> read_file path
  | None -> Alcotest.failf "fixture %s not found" name

let check_fixpoint file =
  match Ndn.Topology_spec.parse_spec (fixture file) with
  | Error e -> Alcotest.failf "%s does not parse: %s" file e
  | Ok spec -> (
    let printed = Ndn.Topology_spec.print spec in
    match Ndn.Topology_spec.parse_spec printed with
    | Error e -> Alcotest.failf "printed %s does not re-parse: %s" file e
    | Ok spec' ->
      Alcotest.(check bool)
        (file ^ ": print/parse round-trips the directives")
        true
        (Ndn.Topology_spec.directives spec
        = Ndn.Topology_spec.directives spec');
      Alcotest.(check string) (file ^ ": print is a fixpoint") printed
        (Ndn.Topology_spec.print spec'))

let test_topo_round_trip_figure1 () = check_fixpoint "figure1.topo"

let test_topo_round_trip_dumbbell () = check_fixpoint "dumbbell.topo"

let test_topo_fixtures_build () =
  List.iter
    (fun file ->
      match Ndn.Topology_spec.parse (fixture file) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s does not build: %s" file e)
    [ "figure1.topo"; "dumbbell.topo" ]

let check_error ~line ~needle text =
  match Ndn.Topology_spec.parse_spec text with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" text
  | Error msg ->
    let prefix = Printf.sprintf "line %d: " line in
    if
      not
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
    then Alcotest.failf "error %S does not carry %S" msg prefix;
    if not (contains msg needle) then
      Alcotest.failf "error %S does not mention %S" msg needle

let test_topo_error_node () =
  check_error ~line:1 ~needle:"node R cs=10000 policy=lru" "node";
  check_error ~line:1 ~needle:"expected a node name before attributes"
    "node cs=5"

let test_topo_error_link () =
  check_error ~line:1 ~needle:"link U R latency=const:1" "link U";
  check_error ~line:1 ~needle:"expected two endpoint names before attributes"
    "link U latency=const:1"

let test_topo_error_route () =
  check_error ~line:1 ~needle:"route U /prod via R" "route U /prod R"

let test_topo_error_unknown_attr () =
  check_error ~line:1 ~needle:"allowed:" "node R colour=red";
  check_error ~line:1 ~needle:"unknown attribute" "node R colour=red"

let test_topo_error_latency () =
  check_error ~line:1 ~needle:"unknown latency model"
    "link U R latency=warp:9"

let test_topo_error_unknown_directive () =
  check_error ~line:1
    ~needle:"expected node, link, route, producer, generate or fault"
    "frobnicate X"

let test_topo_error_loss_range () =
  check_error ~line:1 ~needle:"probability in [0, 1]"
    "link U R latency=const:1 loss=1.5";
  check_error ~line:1 ~needle:"probability in [0, 1]"
    "link U R latency=const:1 loss=-0.1";
  (* The boundaries themselves are legal. *)
  (match Ndn.Topology_spec.parse_spec "node U\nnode R\nlink U R loss=1\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "loss=1 should parse: %s" e);
  match Ndn.Topology_spec.parse_spec "node U\nnode R\nlink U R loss=0\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "loss=0 should parse: %s" e

let test_topo_error_latency_ranges () =
  check_error ~line:1 ~needle:"non-negative" "link U R latency=const:-2";
  check_error ~line:1 ~needle:"hi 1 below lo 3" "link U R latency=uniform:3:1";
  check_error ~line:1 ~needle:"non-negative" "link U R latency=uniform:-1:2";
  check_error ~line:1 ~needle:"non-negative"
    "link U R latency=normal:5:-1:0.5";
  check_error ~line:1 ~needle:"non-negative"
    "node R proc=normal:-5:1:0.5";
  check_error ~line:1 ~needle:"positive"
    "link U R latency=shifted_exp:0.3:0";
  check_error ~line:1 ~needle:"non-negative"
    "link U R latency=shifted_exp:-0.3:2";
  check_error ~line:1 ~needle:"non-negative" "producer P /prod delay=-1"

(* --- fault directives --- *)

let test_topo_fault_parse_and_print () =
  let text =
    "node U\nnode R\nnode P\nlink U R\nlink R P\n\
     fault 120 link_down U R dir=ab\n\
     fault 180 link_up U R dir=ab\n\
     fault 150 degrade R P loss=0.3 latency_factor=2 until=400\n\
     fault 300 crash R preserve_cs=false\n\
     fault 450 restart R\n\
     fault 500 producer_down P until=800\n\
     fault 900 producer_slow P factor=4 until=1200\n"
  in
  match Ndn.Topology_spec.parse_spec text with
  | Error e -> Alcotest.failf "fault spec does not parse: %s" e
  | Ok spec -> (
    let n_faults =
      List.length
        (List.filter
           (function Ndn.Topology_spec.Fault_decl _ -> true | _ -> false)
           (Ndn.Topology_spec.directives spec))
    in
    Alcotest.(check int) "all fault lines parsed" 7 n_faults;
    let printed = Ndn.Topology_spec.print spec in
    match Ndn.Topology_spec.parse_spec printed with
    | Error e -> Alcotest.failf "printed fault spec does not re-parse: %s" e
    | Ok spec' ->
      Alcotest.(check bool) "fault print/parse fixpoint" true
        (Ndn.Topology_spec.directives spec
        = Ndn.Topology_spec.directives spec'))

let test_topo_fault_errors () =
  check_error ~line:1 ~needle:"loss" "fault 10 degrade U R loss=2 until=20";
  check_error ~line:2 ~needle:"" "node U\nfault -5 crash U";
  (* Build-time target validation carries the fault's line number. *)
  match Ndn.Topology_spec.parse "node U\nnode R\nfault 10 crash X\n" with
  | Ok _ -> Alcotest.fail "crash of undeclared node should not build"
  | Error msg ->
    Alcotest.(check bool) "line number" true
      (String.length msg > 8 && String.sub msg 0 8 = "line 3: ");
    Alcotest.(check bool) "names the node" true (contains msg "\"X\"")

let test_topo_fault_builds_and_fires () =
  let text =
    "node U caching=false\nnode R\nnode P\n\
     link U R latency=const:1\nlink R P latency=const:1\n\
     route U /prod via R\nroute R /prod via P\n\
     producer P /prod\n\
     fault 50 crash R\n"
  in
  match Ndn.Topology_spec.parse text with
  | Error e -> Alcotest.failf "does not build: %s" e
  | Ok t ->
    Alcotest.(check int) "schedule exposed" 1
      (List.length t.Ndn.Topology_spec.faults);
    let r = Ndn.Topology_spec.node t "R" in
    Ndn.Network.run t.Ndn.Topology_spec.network;
    Alcotest.(check bool) "crash fired during drain" false
      (Ndn.Node.is_alive r)

let test_topo_error_line_numbers () =
  (* The bad directive sits on line 4 (after a comment and a blank). *)
  check_error ~line:4 ~needle:"node"
    "# topology\n\nnode U\nnode\nnode R\n"

let test_topo_semantic_errors_carry_lines () =
  let check_build ~line ~needle text =
    match Ndn.Topology_spec.parse text with
    | Ok _ -> Alcotest.failf "expected a build error for %S" text
    | Error msg ->
      let prefix = Printf.sprintf "line %d: " line in
      if
        not
          (String.length msg >= String.length prefix
          && String.sub msg 0 (String.length prefix) = prefix)
      then Alcotest.failf "build error %S does not carry %S" msg prefix;
      if not (contains msg needle) then
        Alcotest.failf "build error %S does not mention %S" msg needle
  in
  check_build ~line:2 ~needle:"duplicate node" "node U\nnode U\n";
  check_build ~line:2 ~needle:"undeclared node" "node U\nlink U R\n";
  check_build ~line:3 ~needle:"no such link"
    "node U\nnode R\nroute U /prod via R\n"

let () =
  Alcotest.run "trace"
    [
      ( "schema",
        [
          Alcotest.test_case "kind round-trip" `Quick test_kind_round_trip;
          Alcotest.test_case "kind names unique" `Quick test_kind_names_unique;
          Alcotest.test_case "unknown kind" `Quick test_kind_of_string_unknown;
          Alcotest.test_case "format_of_string" `Quick test_format_of_string;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl basic" `Quick test_jsonl_basic;
          Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
          Alcotest.test_case "csv basic" `Quick test_csv_basic;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
          Alcotest.test_case "csv render header" `Quick
            test_render_csv_has_header;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "buffering order" `Quick test_buffering_order;
          Alcotest.test_case "sink streams" `Quick test_sink_streams;
          Alcotest.test_case "subscribe" `Quick test_subscribe_extra_sink;
          Alcotest.test_case "merge order" `Quick test_merge_preserves_order;
        ] );
      ( "emission",
        [
          Alcotest.test_case "probe covers all layers" `Quick
            test_probe_emits_all_layers;
          Alcotest.test_case "times monotone" `Quick test_probe_times_monotone;
          Alcotest.test_case "tracing does not perturb results" `Quick
            test_tracing_does_not_perturb_results;
          Alcotest.test_case "tally and rate" `Quick test_tally_and_rate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-invariant jsonl" `Slow
            test_jobs_invariant_jsonl;
          Alcotest.test_case "jobs-invariant csv" `Slow test_jobs_invariant_csv;
          Alcotest.test_case "golden probe trace" `Quick
            test_golden_probe_trace;
          Alcotest.test_case "golden attack trace" `Slow
            test_golden_attack_trace;
          Alcotest.test_case "golden sharded attack trace" `Slow
            test_golden_sharded_attack_trace;
        ] );
      ( "topo",
        [
          Alcotest.test_case "round-trip figure1" `Quick
            test_topo_round_trip_figure1;
          Alcotest.test_case "round-trip dumbbell" `Quick
            test_topo_round_trip_dumbbell;
          Alcotest.test_case "fixtures build" `Quick test_topo_fixtures_build;
          Alcotest.test_case "node errors" `Quick test_topo_error_node;
          Alcotest.test_case "link errors" `Quick test_topo_error_link;
          Alcotest.test_case "route errors" `Quick test_topo_error_route;
          Alcotest.test_case "unknown attribute" `Quick
            test_topo_error_unknown_attr;
          Alcotest.test_case "latency errors" `Quick test_topo_error_latency;
          Alcotest.test_case "loss range" `Quick test_topo_error_loss_range;
          Alcotest.test_case "latency parameter ranges" `Quick
            test_topo_error_latency_ranges;
          Alcotest.test_case "fault parse and print" `Quick
            test_topo_fault_parse_and_print;
          Alcotest.test_case "fault errors" `Quick test_topo_fault_errors;
          Alcotest.test_case "fault builds and fires" `Quick
            test_topo_fault_builds_and_fires;
          Alcotest.test_case "unknown directive" `Quick
            test_topo_error_unknown_directive;
          Alcotest.test_case "line numbers" `Quick
            test_topo_error_line_numbers;
          Alcotest.test_case "semantic errors carry lines" `Quick
            test_topo_semantic_errors_carry_lines;
        ] );
    ]
