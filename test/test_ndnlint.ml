(* ndnlint test suite: golden JSONL findings for every rule ID over the
   fixture trees in test/lint_fixtures/, the suppression mechanisms
   (pragma, path-scoped allowlist), and — via the library API, not a
   subprocess — the check that the real repository tree lints clean.

   The fixture "tree" mimics a repo root (lib/, bin/) so path-scoped
   rules behave exactly as they do on the real tree; fixture files only
   need to parse, never to compile. *)

let fixture_root = "lint_fixtures/tree"

let fixture_config ?allowlist_file () =
  Ndnlint.config ~paths:[ "lib"; "bin" ] ?allowlist_file
    ~registry_file:"registry.txt" ~root:fixture_root ()

let lint_exn cfg =
  match Ndnlint.lint cfg with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "ndnlint error: %s" msg

let lint_full_exn cfg =
  match Ndnlint.lint_full cfg with
  | Ok r -> r
  | Error msg -> Alcotest.failf "ndnlint error: %s" msg

let syntactic_rule_ids =
  List.filter_map
    (fun r ->
      if r.Ndnlint.typed || r.Ndnlint.id = "S3" then None else Some r.Ndnlint.id)
    Ndnlint.all_rules

let all_rule_ids = List.map (fun r -> r.Ndnlint.id) Ndnlint.all_rules

(* Every finding the fixture tree must produce, in output order.  One
   golden line per rule ID at minimum; statuses exercise the pragma
   path ("pragma") alongside active findings. *)
let golden_jsonl =
  [
    {|{"rule":"D5","severity":"error","file":"lib/sim/bad_compare.ml","line":1,"col":29,"message":"polymorphic compare in a key-bearing library; use the key module's dedicated compare (Name.compare, String.compare, Float.compare, ...)","status":"active"}|};
    {|{"rule":"D5","severity":"error","file":"lib/sim/bad_compare.ml","line":2,"col":20,"message":"polymorphic Hashtbl.hash in a key-bearing library; hash a canonical scalar (e.g. the key string) or use the key module's hash","status":"active"}|};
    {|{"rule":"D5","severity":"error","file":"lib/sim/bad_compare.ml","line":2,"col":37,"message":"polymorphic Hashtbl.hash in a key-bearing library; hash a canonical scalar (e.g. the key string) or use the key module's hash","status":"active"}|};
    {|{"rule":"D6","severity":"error","file":"lib/sim/bad_compare.ml","line":3,"col":17,"message":"structural (=) on an abstract key value; use the key module's equal/compare so representation changes cannot silently alter results","status":"active"}|};
    {|{"rule":"D8","severity":"error","file":"lib/sim/bad_domain.ml","line":1,"col":8,"message":"raw Domain use in lib/; all concurrency must flow through Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial sharding), which centralize the determinism argument — ad-hoc domains, locks or atomics can reorder events with the scheduler","status":"active"}|};
    {|{"rule":"D8","severity":"error","file":"lib/sim/bad_domain.ml","line":2,"col":8,"message":"raw Mutex use in lib/; all concurrency must flow through Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial sharding), which centralize the determinism argument — ad-hoc domains, locks or atomics can reorder events with the scheduler","status":"active"}|};
    {|{"rule":"D8","severity":"error","file":"lib/sim/bad_domain.ml","line":3,"col":8,"message":"raw Atomic use in lib/; all concurrency must flow through Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial sharding), which centralize the determinism argument — ad-hoc domains, locks or atomics can reorder events with the scheduler","status":"active"}|};
    {|{"rule":"D4","severity":"error","file":"lib/sim/bad_env.ml","line":1,"col":14,"message":"Sys.getenv in lib/: environment must not influence simulation results; plumb configuration through function arguments","status":"active"}|};
    {|{"rule":"D4","severity":"error","file":"lib/sim/bad_env.ml","line":2,"col":15,"message":"Sys.getenv_opt in lib/: environment must not influence simulation results; plumb configuration through function arguments","status":"active"}|};
    {|{"rule":"D7","severity":"warning","file":"lib/sim/bad_hashtbl.ml","line":1,"col":15,"message":"Hashtbl.iter iterates in hash order; sort before anything order-sensitive (or suppress with a pragma/allowlist entry explaining why the order cannot leak)","status":"active"}|};
    {|{"rule":"D1","severity":"error","file":"lib/sim/bad_random.ml","line":1,"col":14,"message":"nondeterministic RNG seeding; every stream must derive from an explicit seed via Sim.Rng","status":"active"}|};
    {|{"rule":"D2","severity":"error","file":"lib/sim/bad_random.ml","line":2,"col":14,"message":"Random.int uses the global Random state; draw from a Sim.Rng generator instead","status":"active"}|};
    {|{"rule":"D1","severity":"error","file":"lib/sim/bad_random.ml","line":3,"col":15,"message":"nondeterministic RNG seeding; every stream must derive from an explicit seed via Sim.Rng","status":"active"}|};
    {|{"rule":"S2","severity":"error","file":"lib/sim/bad_stdout.ml","line":1,"col":16,"message":"print_endline writes to stdout from lib/; stdout belongs to exporters (CSV/JSONL) — route diagnostics to stderr or a formatter argument","status":"active"}|};
    {|{"rule":"S2","severity":"error","file":"lib/sim/bad_stdout.ml","line":2,"col":15,"message":"Printf.printf writes to stdout from lib/; stdout belongs to exporters (CSV/JSONL) — route diagnostics to stderr or a formatter argument","status":"active"}|};
    {|{"rule":"S2","severity":"error","file":"lib/sim/bad_stdout.ml","line":3,"col":16,"message":"Format.printf writes to stdout from lib/; stdout belongs to exporters (CSV/JSONL) — route diagnostics to stderr or a formatter argument","status":"active"}|};
    {|{"rule":"E0","severity":"error","file":"lib/sim/bad_syntax.ml","line":1,"col":13,"message":"syntax error; file cannot be checked","status":"active"}|};
    {|{"rule":"T1","severity":"error","file":"lib/sim/bad_trace.ml","line":5,"col":15,"message":"trace kind \"cs.sneaky\" is emitted here but absent from the registry; add it (and document it) before shipping the event","status":"active"}|};
    {|{"rule":"T4","severity":"error","file":"lib/sim/bad_trace.ml","line":7,"col":14,"message":"registered trace kind \"cs.quiet\" has no stable binary id: add a kind_id case mapping Quiet to its registry position 3, or binary traces cannot encode it","status":"active"}|};
    {|{"rule":"T4","severity":"error","file":"lib/sim/bad_trace.ml","line":11,"col":13,"message":"binary id 1 for trace kind \"nack.congested\" disagrees with its registry position 2; the binary header snapshots the registry in order, so readers would decode the wrong kind","status":"active"}|};
    {|{"rule":"D3","severity":"error","file":"lib/sim/bad_wallclock.ml","line":1,"col":13,"message":"wall-clock read (Unix.gettimeofday) outside bin/; simulated components must only see virtual time","status":"active"}|};
    {|{"rule":"D3","severity":"error","file":"lib/sim/bad_wallclock.ml","line":2,"col":13,"message":"wall-clock read (Sys.time) outside bin/; simulated components must only see virtual time","status":"active"}|};
    {|{"rule":"T3","severity":"error","file":"lib/sim/nack.ml","line":1,"col":24,"message":"NACK reason constructor Sneaky_reason has no registered trace kind \"nack.sneaky_reason\"; register (and emit) it so this refusal stays observable","status":"active"}|};
    {|{"rule":"S1","severity":"error","file":"lib/sim/no_mli.ml","line":1,"col":0,"message":"module under lib/ has no .mli; every library module must declare its interface","status":"active"}|};
    {|{"rule":"D5","severity":"error","file":"lib/sim/pragma_ok.ml","line":1,"col":8,"message":"polymorphic Hashtbl.hash in a key-bearing library; hash a canonical scalar (e.g. the key string) or use the key module's hash","status":"pragma"}|};
    {|{"rule":"D2","severity":"error","file":"lib/sim/pragma_ok.ml","line":4,"col":11,"message":"Random.bool uses the global Random state; draw from a Sim.Rng generator instead","status":"pragma"}|};
    {|{"rule":"D3","severity":"error","file":"lib/sim/stale_pragma.ml","line":13,"col":15,"message":"wall-clock read (Unix.gettimeofday) outside bin/; simulated components must only see virtual time","status":"pragma"}|};
    {|{"rule":"D4","severity":"error","file":"lib/sim/stale_pragma.ml","line":13,"col":37,"message":"Sys.getenv in lib/: environment must not influence simulation results; plumb configuration through function arguments","status":"pragma"}|};
    {|{"rule":"T2","severity":"error","file":"registry.txt","line":3,"col":0,"message":"registry lists trace kind \"old.kind\" but no kind_to_string emits it; remove the stale entry","status":"active"}|};
  ]

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_golden_jsonl () =
  let findings = lint_exn (fixture_config ()) in
  Alcotest.(check (list string))
    "golden JSONL findings" golden_jsonl
    (lines (Ndnlint.render Ndnlint.Jsonl findings));
  Alcotest.(check int) "fixture tree fails the lint" 1 (Ndnlint.exit_code findings)

(* Every shipped syntactic rule ID must be covered by at least one
   golden finding, so a new rule cannot land without a fixture.  S3 is
   covered by the stale-suppression tests below; the typed rules (R1,
   A1, A2, G1) are produced by the Ndntype cmt pass and covered by
   test_ndntype's planted fixtures. *)
let test_rule_coverage () =
  let seen = List.map (fun f -> f.Ndnlint.rule) (lint_exn (fixture_config ())) in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s has a fixture finding" id)
        true (List.mem id seen))
    syntactic_rule_ids;
  (* The table itself must still carry the non-syntactic rules. *)
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s is in the table" id)
        true (List.mem id all_rule_ids))
    [ "S3"; "R1"; "A1"; "A2"; "G1" ]

(* The acceptance check in one test: introducing Random.self_init into
   lib/sim makes the lint exit non-zero. *)
let test_self_init_fails () =
  let findings = lint_exn (fixture_config ()) in
  let d1 =
    List.filter
      (fun f -> f.Ndnlint.rule = "D1" && f.Ndnlint.file = "lib/sim/bad_random.ml")
      findings
  in
  Alcotest.(check int) "self_init is reported" 2 (List.length d1);
  Alcotest.(check int) "and fails the build" 1 (Ndnlint.exit_code findings)

let status_label = function
  | Ndnlint.Active -> "active"
  | Ndnlint.Allowlisted _ -> "allowlisted"
  | Ndnlint.Pragma_suppressed -> "pragma"

let find_one findings ~rule ~file =
  match
    List.filter
      (fun f -> f.Ndnlint.rule = rule && f.Ndnlint.file = file)
      findings
  with
  | f :: _ -> f
  | [] -> Alcotest.failf "no %s finding in %s" rule file

let test_allowlist () =
  let findings = lint_exn (fixture_config ~allowlist_file:"allow.txt" ()) in
  (* Exact-file scope suppresses, and the justification is carried. *)
  (match (find_one findings ~rule:"D1" ~file:"lib/sim/bad_random.ml").Ndnlint.status with
  | Ndnlint.Allowlisted j ->
    Alcotest.(check string)
      "justification preserved" "fixture: self-init is the point of this file" j
  | s -> Alcotest.failf "D1 should be allowlisted, got %s" (status_label s));
  (* Directory scope ("lib/sim/") matches files below it. *)
  Alcotest.(check string)
    "dir-scoped entry applies" "allowlisted"
    (status_label
       (find_one findings ~rule:"D3" ~file:"lib/sim/bad_wallclock.ml").Ndnlint.status);
  (* An entry for a different path must not leak across directories. *)
  Alcotest.(check string)
    "entry for another path does not apply" "active"
    (status_label
       (find_one findings ~rule:"D4" ~file:"lib/sim/bad_env.ml").Ndnlint.status);
  (* Unallowed findings remain, so the tree still fails. *)
  Alcotest.(check int) "still non-zero" 1 (Ndnlint.exit_code findings)

(* One comment, several rules: an `allow D3, D4` pragma suppresses
   both on the covered line and records a single site.  The marker is
   spelled in two pieces below so the real-tree scan of this very file
   does not read the sample as a live (and stale) pragma. *)
let test_multi_rule_pragma () =
  let src =
    "let a = 1\n(* ndn" ^ "lint: allow D3, D4 -- two rules, one comment *)\n"
    ^ "let b = 2\n"
  in
  let p = Ndnlint.pragmas_of_source src in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " suppressed on the covered line")
        true
        (Ndnlint.pragma_suppresses p ~line:3 ~rule))
    [ "D3"; "D4" ];
  Alcotest.(check bool)
    "unlisted rule not suppressed" false
    (Ndnlint.pragma_suppresses p ~line:3 ~rule:"D1");
  match Ndnlint.pragma_sites p with
  | [ site ] ->
    Alcotest.(check (list string))
      "site carries both rules" [ "D3"; "D4" ] site.Ndnlint.ps_rules;
    Alcotest.(check int) "site line" 2 site.Ndnlint.ps_line;
    Alcotest.(check (list int)) "covers itself and the next line" [ 2; 3 ]
      (List.sort compare site.Ndnlint.ps_covers)
  | sites -> Alcotest.failf "expected one pragma site, got %d" (List.length sites)

(* S3 over pragmas: the D1 pragma in stale_pragma.ml covers a line
   that triggers nothing, so the syntactic universe flags it; the
   trailing `allow all` pragma is only condemned by a pass that
   checked the whole rule table. *)
let test_stale_pragma () =
  let findings, inventory = lint_full_exn (fixture_config ()) in
  let stale =
    Ndnlint.stale_findings ~checked_rules:syntactic_rule_ids inventory findings
  in
  (match stale with
  | [ s ] ->
    Alcotest.(check string) "S3 rule" "S3" s.Ndnlint.rule;
    Alcotest.(check string)
      "stale pragma file" "lib/sim/stale_pragma.ml" s.Ndnlint.file;
    Alcotest.(check int) "stale pragma line" 9 s.Ndnlint.line;
    Alcotest.(check bool)
      "message names the unused rule" true (contains ~sub:"D1" s.Ndnlint.message);
    Alcotest.(check int) "stale suppressions fail the build" 1
      (Ndnlint.exit_code (stale @ findings))
  | ss -> Alcotest.failf "expected exactly one stale finding, got %d" (List.length ss));
  let full =
    Ndnlint.stale_findings ~checked_rules:all_rule_ids inventory findings
  in
  Alcotest.(check int) "full universe also condemns the stale `all` pragma" 2
    (List.length full);
  Alcotest.(check bool)
    "the extra stale site is the `all` pragma" true
    (List.exists
       (fun s -> s.Ndnlint.file = "lib/sim/stale_pragma.ml" && s.Ndnlint.line = 15)
       full)

(* S3 over the allowlist: allow.txt's D4 entry points at a path that
   produces no finding, so it is reported at its own line in the
   allowlist file; the two entries that did suppress stay silent. *)
let test_stale_allowlist () =
  let findings, inventory =
    lint_full_exn (fixture_config ~allowlist_file:"allow.txt" ())
  in
  let stale =
    Ndnlint.stale_findings ~checked_rules:syntactic_rule_ids inventory findings
  in
  (match List.filter (fun s -> s.Ndnlint.file = "allow.txt") stale with
  | [ s ] ->
    Alcotest.(check bool)
      "flags the entry that matches nothing" true
      (contains ~sub:"D4 lib/ndn/bad_env.ml" s.Ndnlint.message);
    Alcotest.(check int) "at the entry's own line" 4 s.Ndnlint.line
  | ss -> Alcotest.failf "expected one stale allowlist entry, got %d" (List.length ss));
  Alcotest.(check bool)
    "used entries stay silent" false
    (List.exists
       (fun s -> contains ~sub:"lib/sim/bad_random.ml" s.Ndnlint.message)
       stale)

(* Path-scoped severities: by default D3 is skipped under bench/; a
   Demote entry keeps the finding but downgrades it to a warning. *)
let test_scoped_severities () =
  let skip_cfg = Ndnlint.config ~paths:[ "bench" ] ~root:fixture_root () in
  Alcotest.(check (list string))
    "bench wall-clock skipped by default" []
    (List.map Ndnlint.finding_to_text (lint_exn skip_cfg));
  let demote_cfg =
    Ndnlint.config ~paths:[ "bench" ] ~root:fixture_root
      ~scoped:
        [ { Ndnlint.s_rule = "D3"; s_path = "bench/"; s_action = Ndnlint.Demote } ]
      ()
  in
  (match lint_exn demote_cfg with
  | [ f ] ->
    Alcotest.(check string) "demoted finding is D3" "D3" f.Ndnlint.rule;
    Alcotest.(check bool)
      "demoted to warning" true
      (f.Ndnlint.severity = Ndnlint.Warning)
  | fs -> Alcotest.failf "expected one demoted finding, got %d" (List.length fs));
  let plain_cfg =
    Ndnlint.config ~paths:[ "bench" ] ~root:fixture_root ~scoped:[] ()
  in
  match lint_exn plain_cfg with
  | [ f ] ->
    Alcotest.(check bool)
      "error without scoping" true
      (f.Ndnlint.severity = Ndnlint.Error)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_allowlist_requires_justification () =
  match Ndnlint.lint (fixture_config ~allowlist_file:"allow_broken.txt" ()) with
  | Ok _ -> Alcotest.fail "allowlist without justification must be rejected"
  | Error msg ->
    Alcotest.(check bool)
      "error mentions the missing justification" true
      (contains ~sub:"justification" msg)

let test_clean_tree () =
  let findings =
    lint_exn (Ndnlint.config ~paths:[ "lib" ] ~root:"lint_fixtures/clean" ())
  in
  Alcotest.(check (list string)) "no findings" [] (List.map Ndnlint.finding_to_text findings);
  Alcotest.(check int) "exit 0" 0 (Ndnlint.exit_code findings)

(* `dune build @lint` equivalent, via the library API: the shipped tree
   has no unallowed finding.  Runs from _build/default/test, so the
   repo root is "..". *)
let test_real_tree_passes () =
  let cfg =
    Ndnlint.config ~root:".."
      ~allowlist_file:"tools/ndnlint/allowlist.txt"
      ~registry_file:"lib/sim/trace_kinds.txt" ()
  in
  let findings, inventory = lint_full_exn cfg in
  Alcotest.(check (list string))
    "no active findings on the shipped tree" []
    (List.map Ndnlint.finding_to_text (Ndnlint.active findings));
  Alcotest.(check int) "exit 0" 0 (Ndnlint.exit_code findings);
  (* Every syntactic-rule suppression in the shipped tree still earns
     its keep.  (Typed-rule suppressions are judged in test_ndntype,
     where the merged syntactic+typed universe is available.) *)
  Alcotest.(check (list string))
    "no stale suppressions on the shipped tree" []
    (List.map Ndnlint.finding_to_text
       (Ndnlint.stale_findings ~checked_rules:syntactic_rule_ids inventory
          findings))

(* The checked-in registry and Sim.Trace's programmatic list are the
   same list, in the same order. *)
let test_registry_matches_trace () =
  let registry =
    In_channel.with_open_bin "../lib/sim/trace_kinds.txt" In_channel.input_all
    |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  Alcotest.(check (list string))
    "trace_kinds.txt = Trace.all_kind_names" Sim.Trace.all_kind_names registry;
  (* And round-trips through the typed API. *)
  List.iter
    (fun name ->
      match Sim.Trace.kind_of_string name with
      | Some k ->
        Alcotest.(check string) "round-trip" name (Sim.Trace.kind_to_string k)
      | None -> Alcotest.failf "registry kind %s unknown to Trace" name)
    registry

let () =
  Alcotest.run "ndnlint"
    [
      ( "rules",
        [
          Alcotest.test_case "golden jsonl" `Quick test_golden_jsonl;
          Alcotest.test_case "every rule has a fixture" `Quick test_rule_coverage;
          Alcotest.test_case "self_init fails the build" `Quick test_self_init_fails;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allowlist scoping" `Quick test_allowlist;
          Alcotest.test_case "multi-rule pragma" `Quick test_multi_rule_pragma;
          Alcotest.test_case "stale pragma (S3)" `Quick test_stale_pragma;
          Alcotest.test_case "stale allowlist entry (S3)" `Quick
            test_stale_allowlist;
          Alcotest.test_case "path-scoped severities" `Quick
            test_scoped_severities;
          Alcotest.test_case "allowlist needs justification" `Quick
            test_allowlist_requires_justification;
        ] );
      ( "trees",
        [
          Alcotest.test_case "clean fixture exits 0" `Quick test_clean_tree;
          Alcotest.test_case "real tree passes" `Quick test_real_tree_passes;
          Alcotest.test_case "registry = Trace.all_kind_names" `Quick
            test_registry_matches_trace;
        ] );
    ]
