(* ndnlint test suite: golden JSONL findings for every rule ID over the
   fixture trees in test/lint_fixtures/, the suppression mechanisms
   (pragma, path-scoped allowlist), and — via the library API, not a
   subprocess — the check that the real repository tree lints clean.

   The fixture "tree" mimics a repo root (lib/, bin/) so path-scoped
   rules behave exactly as they do on the real tree; fixture files only
   need to parse, never to compile. *)

let fixture_root = "lint_fixtures/tree"

let fixture_config ?allowlist_file () =
  Ndnlint.config ~paths:[ "lib"; "bin" ] ?allowlist_file
    ~registry_file:"registry.txt" ~root:fixture_root ()

let lint_exn cfg =
  match Ndnlint.lint cfg with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "ndnlint error: %s" msg

(* Every finding the fixture tree must produce, in output order.  One
   golden line per rule ID at minimum; statuses exercise the pragma
   path ("pragma") alongside active findings. *)
let golden_jsonl =
  [
    {|{"rule":"D5","severity":"error","file":"lib/sim/bad_compare.ml","line":1,"col":29,"message":"polymorphic compare in a key-bearing library; use the key module's dedicated compare (Name.compare, String.compare, Float.compare, ...)","status":"active"}|};
    {|{"rule":"D5","severity":"error","file":"lib/sim/bad_compare.ml","line":2,"col":20,"message":"polymorphic Hashtbl.hash in a key-bearing library; hash a canonical scalar (e.g. the key string) or use the key module's hash","status":"active"}|};
    {|{"rule":"D5","severity":"error","file":"lib/sim/bad_compare.ml","line":2,"col":37,"message":"polymorphic Hashtbl.hash in a key-bearing library; hash a canonical scalar (e.g. the key string) or use the key module's hash","status":"active"}|};
    {|{"rule":"D6","severity":"error","file":"lib/sim/bad_compare.ml","line":3,"col":17,"message":"structural (=) on an abstract key value; use the key module's equal/compare so representation changes cannot silently alter results","status":"active"}|};
    {|{"rule":"D8","severity":"error","file":"lib/sim/bad_domain.ml","line":1,"col":8,"message":"raw Domain use in lib/; all concurrency must flow through Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial sharding), which centralize the determinism argument — ad-hoc domains, locks or atomics can reorder events with the scheduler","status":"active"}|};
    {|{"rule":"D8","severity":"error","file":"lib/sim/bad_domain.ml","line":2,"col":8,"message":"raw Mutex use in lib/; all concurrency must flow through Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial sharding), which centralize the determinism argument — ad-hoc domains, locks or atomics can reorder events with the scheduler","status":"active"}|};
    {|{"rule":"D8","severity":"error","file":"lib/sim/bad_domain.ml","line":3,"col":8,"message":"raw Atomic use in lib/; all concurrency must flow through Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial sharding), which centralize the determinism argument — ad-hoc domains, locks or atomics can reorder events with the scheduler","status":"active"}|};
    {|{"rule":"D4","severity":"error","file":"lib/sim/bad_env.ml","line":1,"col":14,"message":"Sys.getenv in lib/: environment must not influence simulation results; plumb configuration through function arguments","status":"active"}|};
    {|{"rule":"D4","severity":"error","file":"lib/sim/bad_env.ml","line":2,"col":15,"message":"Sys.getenv_opt in lib/: environment must not influence simulation results; plumb configuration through function arguments","status":"active"}|};
    {|{"rule":"D7","severity":"warning","file":"lib/sim/bad_hashtbl.ml","line":1,"col":15,"message":"Hashtbl.iter iterates in hash order; sort before anything order-sensitive (or suppress with a pragma/allowlist entry explaining why the order cannot leak)","status":"active"}|};
    {|{"rule":"D1","severity":"error","file":"lib/sim/bad_random.ml","line":1,"col":14,"message":"nondeterministic RNG seeding; every stream must derive from an explicit seed via Sim.Rng","status":"active"}|};
    {|{"rule":"D2","severity":"error","file":"lib/sim/bad_random.ml","line":2,"col":14,"message":"Random.int uses the global Random state; draw from a Sim.Rng generator instead","status":"active"}|};
    {|{"rule":"D1","severity":"error","file":"lib/sim/bad_random.ml","line":3,"col":15,"message":"nondeterministic RNG seeding; every stream must derive from an explicit seed via Sim.Rng","status":"active"}|};
    {|{"rule":"S2","severity":"error","file":"lib/sim/bad_stdout.ml","line":1,"col":16,"message":"print_endline writes to stdout from lib/; stdout belongs to exporters (CSV/JSONL) — route diagnostics to stderr or a formatter argument","status":"active"}|};
    {|{"rule":"S2","severity":"error","file":"lib/sim/bad_stdout.ml","line":2,"col":15,"message":"Printf.printf writes to stdout from lib/; stdout belongs to exporters (CSV/JSONL) — route diagnostics to stderr or a formatter argument","status":"active"}|};
    {|{"rule":"S2","severity":"error","file":"lib/sim/bad_stdout.ml","line":3,"col":16,"message":"Format.printf writes to stdout from lib/; stdout belongs to exporters (CSV/JSONL) — route diagnostics to stderr or a formatter argument","status":"active"}|};
    {|{"rule":"E0","severity":"error","file":"lib/sim/bad_syntax.ml","line":1,"col":13,"message":"syntax error; file cannot be checked","status":"active"}|};
    {|{"rule":"T1","severity":"error","file":"lib/sim/bad_trace.ml","line":5,"col":15,"message":"trace kind \"cs.sneaky\" is emitted here but absent from the registry; add it (and document it) before shipping the event","status":"active"}|};
    {|{"rule":"D3","severity":"error","file":"lib/sim/bad_wallclock.ml","line":1,"col":13,"message":"wall-clock read (Unix.gettimeofday) outside bin/; simulated components must only see virtual time","status":"active"}|};
    {|{"rule":"D3","severity":"error","file":"lib/sim/bad_wallclock.ml","line":2,"col":13,"message":"wall-clock read (Sys.time) outside bin/; simulated components must only see virtual time","status":"active"}|};
    {|{"rule":"T3","severity":"error","file":"lib/sim/nack.ml","line":1,"col":24,"message":"NACK reason constructor Sneaky_reason has no registered trace kind \"nack.sneaky_reason\"; register (and emit) it so this refusal stays observable","status":"active"}|};
    {|{"rule":"S1","severity":"error","file":"lib/sim/no_mli.ml","line":1,"col":0,"message":"module under lib/ has no .mli; every library module must declare its interface","status":"active"}|};
    {|{"rule":"D5","severity":"error","file":"lib/sim/pragma_ok.ml","line":1,"col":8,"message":"polymorphic Hashtbl.hash in a key-bearing library; hash a canonical scalar (e.g. the key string) or use the key module's hash","status":"pragma"}|};
    {|{"rule":"D2","severity":"error","file":"lib/sim/pragma_ok.ml","line":4,"col":11,"message":"Random.bool uses the global Random state; draw from a Sim.Rng generator instead","status":"pragma"}|};
    {|{"rule":"T2","severity":"error","file":"registry.txt","line":3,"col":0,"message":"registry lists trace kind \"old.kind\" but no kind_to_string emits it; remove the stale entry","status":"active"}|};
  ]

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_golden_jsonl () =
  let findings = lint_exn (fixture_config ()) in
  Alcotest.(check (list string))
    "golden JSONL findings" golden_jsonl
    (lines (Ndnlint.render Ndnlint.Jsonl findings));
  Alcotest.(check int) "fixture tree fails the lint" 1 (Ndnlint.exit_code findings)

(* Every shipped rule ID must be covered by at least one golden
   finding, so a new rule cannot land without a fixture. *)
let test_rule_coverage () =
  let seen = List.map (fun f -> f.Ndnlint.rule) (lint_exn (fixture_config ())) in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s has a fixture finding" r.Ndnlint.id)
        true
        (List.mem r.Ndnlint.id seen))
    Ndnlint.all_rules

(* The acceptance check in one test: introducing Random.self_init into
   lib/sim makes the lint exit non-zero. *)
let test_self_init_fails () =
  let findings = lint_exn (fixture_config ()) in
  let d1 =
    List.filter
      (fun f -> f.Ndnlint.rule = "D1" && f.Ndnlint.file = "lib/sim/bad_random.ml")
      findings
  in
  Alcotest.(check int) "self_init is reported" 2 (List.length d1);
  Alcotest.(check int) "and fails the build" 1 (Ndnlint.exit_code findings)

let status_label = function
  | Ndnlint.Active -> "active"
  | Ndnlint.Allowlisted _ -> "allowlisted"
  | Ndnlint.Pragma_suppressed -> "pragma"

let find_one findings ~rule ~file =
  match
    List.filter
      (fun f -> f.Ndnlint.rule = rule && f.Ndnlint.file = file)
      findings
  with
  | f :: _ -> f
  | [] -> Alcotest.failf "no %s finding in %s" rule file

let test_allowlist () =
  let findings = lint_exn (fixture_config ~allowlist_file:"allow.txt" ()) in
  (* Exact-file scope suppresses, and the justification is carried. *)
  (match (find_one findings ~rule:"D1" ~file:"lib/sim/bad_random.ml").Ndnlint.status with
  | Ndnlint.Allowlisted j ->
    Alcotest.(check string)
      "justification preserved" "fixture: self-init is the point of this file" j
  | s -> Alcotest.failf "D1 should be allowlisted, got %s" (status_label s));
  (* Directory scope ("lib/sim/") matches files below it. *)
  Alcotest.(check string)
    "dir-scoped entry applies" "allowlisted"
    (status_label
       (find_one findings ~rule:"D3" ~file:"lib/sim/bad_wallclock.ml").Ndnlint.status);
  (* An entry for a different path must not leak across directories. *)
  Alcotest.(check string)
    "entry for another path does not apply" "active"
    (status_label
       (find_one findings ~rule:"D4" ~file:"lib/sim/bad_env.ml").Ndnlint.status);
  (* Unallowed findings remain, so the tree still fails. *)
  Alcotest.(check int) "still non-zero" 1 (Ndnlint.exit_code findings)

let test_allowlist_requires_justification () =
  match Ndnlint.lint (fixture_config ~allowlist_file:"allow_broken.txt" ()) with
  | Ok _ -> Alcotest.fail "allowlist without justification must be rejected"
  | Error msg ->
    Alcotest.(check bool)
      "error mentions the missing justification" true
      (contains ~sub:"justification" msg)

let test_clean_tree () =
  let findings =
    lint_exn (Ndnlint.config ~paths:[ "lib" ] ~root:"lint_fixtures/clean" ())
  in
  Alcotest.(check (list string)) "no findings" [] (List.map Ndnlint.finding_to_text findings);
  Alcotest.(check int) "exit 0" 0 (Ndnlint.exit_code findings)

(* `dune build @lint` equivalent, via the library API: the shipped tree
   has no unallowed finding.  Runs from _build/default/test, so the
   repo root is "..". *)
let test_real_tree_passes () =
  let cfg =
    Ndnlint.config ~root:".."
      ~allowlist_file:"tools/ndnlint/allowlist.txt"
      ~registry_file:"lib/sim/trace_kinds.txt" ()
  in
  let findings = lint_exn cfg in
  Alcotest.(check (list string))
    "no active findings on the shipped tree" []
    (List.map Ndnlint.finding_to_text (Ndnlint.active findings));
  Alcotest.(check int) "exit 0" 0 (Ndnlint.exit_code findings)

(* The checked-in registry and Sim.Trace's programmatic list are the
   same list, in the same order. *)
let test_registry_matches_trace () =
  let registry =
    In_channel.with_open_bin "../lib/sim/trace_kinds.txt" In_channel.input_all
    |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  Alcotest.(check (list string))
    "trace_kinds.txt = Trace.all_kind_names" Sim.Trace.all_kind_names registry;
  (* And round-trips through the typed API. *)
  List.iter
    (fun name ->
      match Sim.Trace.kind_of_string name with
      | Some k ->
        Alcotest.(check string) "round-trip" name (Sim.Trace.kind_to_string k)
      | None -> Alcotest.failf "registry kind %s unknown to Trace" name)
    registry

let () =
  Alcotest.run "ndnlint"
    [
      ( "rules",
        [
          Alcotest.test_case "golden jsonl" `Quick test_golden_jsonl;
          Alcotest.test_case "every rule has a fixture" `Quick test_rule_coverage;
          Alcotest.test_case "self_init fails the build" `Quick test_self_init_fails;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allowlist scoping" `Quick test_allowlist;
          Alcotest.test_case "allowlist needs justification" `Quick
            test_allowlist_requires_justification;
        ] );
      ( "trees",
        [
          Alcotest.test_case "clean fixture exits 0" `Quick test_clean_tree;
          Alcotest.test_case "real tree passes" `Quick test_real_tree_passes;
          Alcotest.test_case "registry = Trace.all_kind_names" `Quick
            test_registry_matches_trace;
        ] );
    ]
