(* ndnsim: command-line interface to the cache-privacy laboratory.

     ndnsim attack   --topology lan --contents 100 --runs 5
     ndnsim defend   --countermeasure specific
     ndnsim trace    --requests 400000 --out trace.txt
     ndnsim replay   --requests 200000 --policy expo --capacity 8000
     ndnsim theorems --k 5 --delta 0.05
     ndnsim probe    --warm /prod/a --target /prod/a
     ndnsim flood    --rate 4 --pit-capacity 256 --admission evict-oldest

   Every experiment of the paper is reachable from here; `bench/main.exe`
   regenerates the figures wholesale. *)

open Cmdliner

(* --- shared argument definitions --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic RNG seed.")

let topology_arg =
  let parse = function
    | "lan" -> Ok `Lan
    | "wan" -> Ok `Wan
    | "producer" -> Ok `Producer
    | "local" -> Ok `Local
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with `Lan -> "lan" | `Wan -> "wan" | `Producer -> "producer" | `Local -> "local")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Lan
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:"Measurement topology: $(b,lan), $(b,wan), $(b,producer) or $(b,local).")

let make_setup_of_topology ?shards = function
  | `Lan -> fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ?shards ()
  | `Wan -> fun ~seed ~tracer -> Ndn.Network.wan ~seed ~tracer ?shards ()
  | `Producer ->
    fun ~seed ~tracer -> Ndn.Network.wan_producer ~seed ~tracer ?shards ()
  | `Local -> fun ~seed ~tracer -> Ndn.Network.local_host ~seed ~tracer ?shards ()

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition each simulated network across $(docv) engine domains \
           ($(b,Sim.Shard)).  Results, traces and metrics are byte-identical \
           for every $(docv); combined with $(b,--jobs) the campaign budgets \
           jobs*shards domains and refuses to oversubscribe the host.")

(* --- structured event tracing (--trace / --trace-format) --- *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the structured simulation event trace (engine steps, \
           Content-Store operations, packet hops, latency draws) to $(docv); \
           $(b,-) streams it to stdout (all diagnostics go to stderr, so \
           piped CSV/JSONL is never interleaved with warnings).")

let trace_format_arg =
  let parse s =
    match Sim.Trace.format_of_string s with
    | Some fmt -> Ok fmt
    | None -> Error (`Msg (Printf.sprintf "unknown trace format %S" s))
  in
  let print ppf fmt = Format.pp_print_string ppf (Sim.Trace.format_to_string fmt) in
  Arg.(
    value
    & opt (conv (parse, print)) Sim.Trace.Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace file format: $(b,jsonl) (default), $(b,csv), or $(b,binary) \
           (the compact length-prefixed wire format of DESIGN \\u{00a7}16, \
           readable by $(b,ndnsim analyze)).")

(* The summary line is a diagnostic, so it goes to stderr: with
   [--trace -] the exported rows own stdout and must never interleave
   with warnings (the S2 lint rule enforces the same split in lib/). *)
let write_trace ~file ~format tracer =
  (match file with
  | "-" ->
    if format = Sim.Trace.Binary then set_binary_mode_out stdout true;
    Sim.Trace.write format stdout tracer;
    flush stdout
  | _ ->
    let oc = open_out_bin file in
    Sim.Trace.write format oc tracer;
    close_out oc);
  Format.eprintf "trace: %d events -> %s (%s)@." (Sim.Trace.length tracer)
    (if file = "-" then "<stdout>" else file)
    (Sim.Trace.format_to_string format)

(* Result lines normally own stdout, but with [--trace -] the streamed
   trace does, so the human-readable output moves to stderr too. *)
let result_formatter trace_file =
  if trace_file = Some "-" then Format.err_formatter else Format.std_formatter

(* --- fault schedules (--faults) --- *)

let faults_arg =
  let parse path =
    match Sim.Fault.load ~path with
    | Ok schedule -> Ok schedule
    | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" path msg))
  in
  let print ppf s = Format.fprintf ppf "<%d faults>" (List.length s) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "faults" ] ~docv:"FILE"
        ~doc:
          "Inject the deterministic fault schedule in $(docv) (one fault \
           per line: TIME KIND ARGS; see $(b,Sim.Fault)) into every \
           simulated network.")

let install_faults_or_die net = function
  | None -> ()
  | Some schedule -> (
    match Ndn.Network.install_faults net schedule with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "fault schedule: %s@." msg;
      exit 1)

(* Timing_experiment installs the schedule into each run's fresh
   network and rejects unknown targets there; surface that as a clean
   CLI error rather than an uncaught exception. *)
let experiment_or_die f =
  try f ()
  with Invalid_argument msg ->
    Format.eprintf "%s@." msg;
    exit 1

let countermeasure_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ "none" ] -> Ok `None
    | [ "specific" ] -> Ok (`Delay Core.Delay.Content_specific)
    | [ "constant"; gamma ] -> (
      match float_of_string_opt gamma with
      | Some g when g >= 0. -> Ok (`Delay (Core.Delay.Constant g))
      | _ -> Error (`Msg "constant:<gamma-ms> expects a non-negative float"))
    | [ "dynamic" ] ->
      Ok (`Delay (Core.Delay.Dynamic { floor = 2.; half_life_requests = 10. }))
    | [ "uniform"; k; delta ] -> (
      match (int_of_string_opt k, float_of_string_opt delta) with
      | Some k, Some delta when k > 0 && delta > 0. ->
        Ok (`Random (Core.Kdist.uniform_for ~k ~delta))
      | _ -> Error (`Msg "uniform:<k>:<delta>"))
    | [ "expo"; k; eps; delta ] -> (
      match
        (int_of_string_opt k, float_of_string_opt eps, float_of_string_opt delta)
      with
      | Some k, Some eps, Some delta -> (
        match Core.Kdist.exponential_for ~k ~eps ~delta with
        | Some kd -> Ok (`Random kd)
        | None -> Error (`Msg "expo: delta below 1 - alpha^k is infeasible"))
      | _ -> Error (`Msg "expo:<k>:<eps>:<delta>"))
    | _ -> Error (`Msg (Printf.sprintf "unknown countermeasure %S" s))
  in
  let print ppf _ = Format.pp_print_string ppf "<countermeasure>" in
  Arg.(
    value
    & opt (conv (parse, print)) `None
    & info [ "countermeasure" ] ~docv:"CM"
        ~doc:
          "Router countermeasure: $(b,none), $(b,specific), \
           $(b,constant:GAMMA), $(b,dynamic), $(b,uniform:K:DELTA) or \
           $(b,expo:K:EPS:DELTA).")

let attach_countermeasure ?tracer router ~seed = function
  | `None -> ()
  | `Delay policy ->
    ignore
      (Core.Private_router.attach ?tracer router ~rng:(Sim.Rng.create seed)
         (Core.Private_router.Delay_private policy))
  | `Random kdist ->
    ignore
      (Core.Private_router.attach ?tracer router ~rng:(Sim.Rng.create seed)
         (Core.Private_router.Random_cache_mimic
            { kdist; grouping = Core.Grouping.By_namespace 2 }))

(* --- overload plumbing shared by `attack --flood` and `flood` --- *)

let admission_arg =
  let parse s =
    match Ndn.Pit.admission_of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown admission policy %S" s))
  in
  let print ppf a = Format.pp_print_string ppf (Ndn.Pit.admission_to_string a) in
  Arg.(
    value
    & opt (conv (parse, print)) Ndn.Pit.Drop_new
    & info [ "admission" ] ~docv:"POLICY"
        ~doc:
          "PIT admission policy once $(b,--pit-capacity) is set: \
           $(b,drop-new), $(b,evict-oldest) or $(b,per-face-fair).")

let pit_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pit-capacity" ] ~docv:"N"
        ~doc:
          "Bound the shared router's PIT to $(docv) entries (default: \
           unbounded, the legacy plane).")

(* Arm the robust plane on an existing probe setup and launch the
   flood: NACKs everywhere, optional finite PIT on the shared router,
   and an unsatisfiable producer subnamespace ([prefix/boom] resolves
   to a handler that never answers) that the flooding station hammers
   so every flood interest pins PIT state for its full lifetime. *)
let arm_flood ~setup ~rate ~until ~pit_capacity ~admission ~seed =
  List.iter
    (fun (_, n) -> Ndn.Node.set_nacks_enabled n true)
    (Ndn.Network.nodes setup.Ndn.Network.net);
  (match pit_capacity with
  | Some c ->
    Ndn.Node.set_pit_limits setup.Ndn.Network.router ~capacity:c ~admission ()
  | None -> ());
  let boom = Ndn.Name.append setup.Ndn.Network.prefix "boom" in
  Ndn.Node.add_producer setup.Ndn.Network.producer_host ~prefix:boom (fun _ ->
      None);
  Workload.Flood.attach
    {
      Workload.Flood.rate_per_ms = rate;
      scope = None;
      timeout_ms = Some 2000.;
    }
    ~node:setup.Ndn.Network.adversary ~prefix:boom
    ~rng:(Sim.Rng.create (seed + 0xF100d))
    ~until ()

(* --- attack: the Figure 3 measurement campaign --- *)

let attack_cmd =
  let run topology contents runs seed jobs shards trace_file trace_format faults
      flood flood_until pit_capacity admission =
    let base_make = make_setup_of_topology ?shards topology in
    let make_setup ~seed ~tracer =
      let setup = base_make ~seed ~tracer in
      (match flood with
      | None -> ()
      | Some rate ->
        ignore
          (arm_flood ~setup ~rate ~until:flood_until ~pit_capacity ~admission
             ~seed));
      setup
    in
    let result =
      experiment_or_die (fun () ->
          Attack.Timing_experiment.run ~make_setup
            ~contents ~runs ~seed ?jobs ?shards
            ?faults
            ~trace:(trace_file <> None) ())
    in
    Attack.Timing_experiment.pp_result (result_formatter trace_file) result;
    match trace_file with
    | Some file ->
      write_trace ~file ~format:trace_format result.Attack.Timing_experiment.trace
    | None -> ()
  in
  let contents =
    Arg.(value & opt int 100 & info [ "contents" ] ~docv:"N" ~doc:"Contents per run.")
  in
  let runs =
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc:"Independent runs (fresh caches).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Fan runs over $(docv) domains (default: one per hardware \
             thread).  Results and traces are identical for any value.")
  in
  let flood =
    Arg.(
      value
      & opt (some float) None
      & info [ "flood" ] ~docv:"RATE"
          ~doc:
            "Run the campaign under an interest flood: the adversary \
             station also injects $(docv) unsatisfiable interests per \
             virtual millisecond ($(b,Workload.Flood)), with NACKs enabled \
             network-wide.  Results stay byte-identical across \
             $(b,--jobs)/$(b,--shards).")
  in
  let flood_until =
    Arg.(
      value
      & opt float 2000.
      & info [ "flood-until" ] ~docv:"MS"
          ~doc:"Stop flood injection at this virtual time (per run).")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Run the cache timing attack and report hit/miss RTT histograms.")
    Term.(
      const run $ topology_arg $ contents $ runs $ seed_arg $ jobs $ shards_arg
      $ trace_file_arg $ trace_format_arg $ faults_arg $ flood $ flood_until
      $ pit_capacity_arg $ admission_arg)

(* --- defend: attack vs countermeasure --- *)

let defend_cmd =
  let run topology cm contents runs seed jobs shards trace_file trace_format
      faults =
    let base_make = make_setup_of_topology ?shards topology in
    (* The defended variant marks all content producer-private so the
       countermeasure engages. *)
    let private_producer =
      { Ndn.Network.default_producer_config with producer_private = true }
    in
    let producer_make ~seed ~tracer =
      let setup =
        match topology with
        | `Lan ->
          Ndn.Network.lan ~seed ~tracer ?shards ~producer:private_producer ()
        | `Wan ->
          Ndn.Network.wan ~seed ~tracer ?shards ~producer:private_producer ()
        | `Producer ->
          Ndn.Network.wan_producer ~seed ~tracer ?shards
            ~producer:private_producer ()
        | `Local ->
          Ndn.Network.local_host ~seed ~tracer ?shards
            ~producer:private_producer ()
      in
      (* The router's own tracer, not the campaign tracer: in legacy mode
         they are the same object, but in shard mode the countermeasure's
         records must flow through the router's shard buffer to be
         stitched deterministically. *)
      attach_countermeasure
        ~tracer:(Ndn.Node.tracer setup.Ndn.Network.router)
        setup.Ndn.Network.router ~seed:(seed + 10_000) cm;
      setup
    in
    let trace = trace_file <> None in
    let baseline =
      experiment_or_die (fun () ->
          Attack.Timing_experiment.run ~make_setup:base_make ~contents ~runs
            ~seed ?jobs ?shards ?faults ~trace ())
    in
    let defended =
      experiment_or_die (fun () ->
          Attack.Timing_experiment.run ~make_setup:producer_make ~contents
            ~runs ~seed ?jobs ?shards ?faults ~trace ())
    in
    Format.printf "undefended distinguisher: %.2f%%@."
      (100. *. baseline.Attack.Timing_experiment.success_rate);
    Format.printf "defended distinguisher:   %.2f%%@."
      (100. *. defended.Attack.Timing_experiment.success_rate);
    match trace_file with
    | Some file ->
      (* Baseline campaign first, then the defended one. *)
      let merged = Sim.Trace.create () in
      Sim.Trace.merge_into ~into:merged baseline.Attack.Timing_experiment.trace;
      Sim.Trace.merge_into ~into:merged defended.Attack.Timing_experiment.trace;
      write_trace ~file ~format:trace_format merged
    | None -> ()
  in
  let contents =
    Arg.(value & opt int 60 & info [ "contents" ] ~docv:"N" ~doc:"Contents per run.")
  in
  let runs = Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc:"Runs.") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Fan runs over $(docv) domains (default: one per hardware \
             thread).  Results and traces are identical for any value.")
  in
  Cmd.v
    (Cmd.info "defend"
       ~doc:"Measure distinguisher accuracy with and without a countermeasure.")
    Term.(
      const run $ topology_arg $ countermeasure_arg $ contents $ runs $ seed_arg
      $ jobs $ shards_arg $ trace_file_arg $ trace_format_arg $ faults_arg)

(* --- trace generation --- *)

let trace_cmd =
  let run requests users out seed =
    let cfg =
      { Workload.Ircache.default with Workload.Ircache.requests; users; seed }
    in
    let trace = Workload.Ircache.generate cfg in
    Format.printf "%a@." Workload.Trace.pp_summary trace;
    match out with
    | Some path ->
      Workload.Trace.save trace ~path;
      Format.printf "saved to %s@." path
    | None -> ()
  in
  let requests =
    Arg.(value & opt int 400_000 & info [ "requests" ] ~docv:"N" ~doc:"Request count.")
  in
  let users = Arg.(value & opt int 185 & info [ "users" ] ~docv:"N" ~doc:"User count.") in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Save to file.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate the synthetic IRCache-like workload.")
    Term.(const run $ requests $ users $ out $ seed_arg)

(* --- replay --- *)

let replay_cmd =
  let run trace_file squid_file requests policy capacity private_frac k eps delta
      seed =
    let trace =
      match (trace_file, squid_file) with
      | Some path, _ -> Workload.Trace.load ~path
      | None, Some path ->
        let trace, stats = Workload.Squid_log.load ~path in
        Format.eprintf "squid log: %d lines parsed, %d skipped@."
          stats.Workload.Squid_log.parsed stats.Workload.Squid_log.skipped;
        trace
      | None, None ->
        Workload.Ircache.generate
          { Workload.Ircache.default with Workload.Ircache.requests; seed }
    in
    Format.printf "workload: %a@." Workload.Trace.pp_summary trace;
    let kind =
      match policy with
      | "none" -> Core.Policy.No_privacy
      | "always" -> Core.Policy.Always_delay
      | "uniform" -> Core.Policy.Random_cache (Core.Kdist.uniform_for ~k ~delta)
      | "expo" -> (
        match Core.Kdist.exponential_for ~k ~eps ~delta with
        | Some kd -> Core.Policy.Random_cache kd
        | None -> failwith "expo parameters infeasible (delta < 1 - alpha^k)")
      | s -> failwith (Printf.sprintf "unknown policy %S" s)
    in
    let outcome =
      Workload.Replay.replay trace
        {
          Workload.Replay.default_config with
          Workload.Replay.cache_capacity = capacity;
          policy = kind;
          private_mode = Workload.Replay.Per_content private_frac;
          seed;
        }
    in
    Format.printf "%a@." Workload.Replay.pp_outcome outcome
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Load a saved trace.")
  in
  let squid_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "squid" ] ~docv:"FILE"
          ~doc:"Load a Squid access.log (the IRCache trace format).")
  in
  let requests =
    Arg.(value & opt int 200_000 & info [ "requests" ] ~docv:"N" ~doc:"Synthetic trace size.")
  in
  let policy =
    Arg.(
      value
      & opt string "none"
      & info [ "policy" ] ~docv:"P"
          ~doc:"Cache policy: $(b,none), $(b,always), $(b,uniform) or $(b,expo).")
  in
  let capacity =
    Arg.(value & opt int 8000 & info [ "capacity" ] ~docv:"N" ~doc:"Cache entries; 0 = unbounded.")
  in
  let private_frac =
    Arg.(value & opt float 0.2 & info [ "private-frac" ] ~docv:"F" ~doc:"Private content fraction.")
  in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Anonymity parameter k.") in
  let eps = Arg.(value & opt float 0.005 & info [ "eps" ] ~docv:"E" ~doc:"Privacy eps (expo).") in
  let delta = Arg.(value & opt float 0.05 & info [ "delta" ] ~docv:"D" ~doc:"Privacy delta.") in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a workload through a privacy-aware cache.")
    Term.(
      const run $ trace_file $ squid_file $ requests $ policy $ capacity
      $ private_frac $ k $ eps $ delta $ seed_arg)

(* --- theorems --- *)

let theorems_cmd =
  let run k delta eps =
    let domain = Privacy.Theorems.Uniform.domain_for_delta ~k ~delta in
    Format.printf "Uniform-Random-Cache: K = %d gives (%d, 0, %.4f)-privacy@." domain
      k
      (Privacy.Theorems.Uniform.delta ~k ~domain);
    Format.printf "  exact achieved delta: %.5f@."
      (Privacy.Outputs.achieved_delta
         ~k_dist:(Privacy.Theorems.Uniform.k_dist ~domain)
         ~k ~probes:(domain + k) ~eps:0.);
    let alpha = Privacy.Theorems.Exponential.alpha_for_epsilon ~k ~eps in
    match Privacy.Theorems.Exponential.domain_for_delta ~k ~alpha ~delta with
    | Some domain_e ->
      Format.printf
        "Exponential-Random-Cache: alpha = %.5f, K = %d gives (%d, %.4f, %.4f)-privacy@."
        alpha domain_e k eps
        (Privacy.Theorems.Exponential.delta ~k ~alpha ~domain:domain_e);
      Format.printf "  exact achieved delta: %.5f@."
        (Privacy.Outputs.achieved_delta
           ~k_dist:(Privacy.Theorems.Exponential.k_dist ~alpha ~domain:domain_e)
           ~k
           ~probes:(domain_e + k)
           ~eps);
      List.iter
        (fun c ->
          Format.printf "  u(%3d): uniform %.4f  expo %.4f@." c
            (Privacy.Theorems.Uniform.utility_exact ~c ~domain)
            (Privacy.Theorems.Exponential.utility_exact ~c ~alpha ~domain:domain_e))
        [ 1; 10; 50; 100 ]
    | None ->
      Format.printf
        "Exponential-Random-Cache: infeasible (delta %.4f < 1 - alpha^k = %.4f)@."
        delta
        (Privacy.Theorems.Exponential.delta_limit ~k ~alpha)
  in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Anonymity parameter.") in
  let delta = Arg.(value & opt float 0.05 & info [ "delta" ] ~docv:"D" ~doc:"Target delta.") in
  let eps = Arg.(value & opt float 0.05 & info [ "eps" ] ~docv:"E" ~doc:"Target eps.") in
  Cmd.v
    (Cmd.info "theorems" ~doc:"Solve scheme parameters and verify the privacy theorems.")
    Term.(const run $ k $ delta $ eps)

(* --- leak: Bayesian leakage quantification --- *)

let leak_cmd =
  let run k delta max_count =
    let domain = Privacy.Theorems.Uniform.domain_for_delta ~k ~delta in
    let probes = domain + max_count + 2 in
    Format.printf
      "hidden request count uniform on 0..%d (%.3f bits); adversary probes %d times@."
      max_count
      (Privacy.Bayes.entropy (Privacy.Dist.uniform_int (max_count + 1)))
      probes;
    List.iter
      (fun (label, kdist) ->
        Format.printf "%-34s leaks %.3f bits@." label
          (Attack.Popularity_attack.information_leak_bits ~kdist ~max_count ~probes))
      [
        (Printf.sprintf "naive threshold k=%d" k, Core.Kdist.Constant k);
        ( Printf.sprintf "Uniform-Random-Cache K=%d" domain,
          Core.Kdist.Uniform domain );
        ( Printf.sprintf "Expo-Random-Cache a=.97 K=%d" domain,
          Core.Kdist.Truncated_geometric { alpha = 0.97; domain } );
      ]
  in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Anonymity parameter.") in
  let delta = Arg.(value & opt float 0.05 & info [ "delta" ] ~docv:"D" ~doc:"Privacy delta.") in
  let max_count =
    Arg.(value & opt int 10 & info [ "max-count" ] ~docv:"N" ~doc:"Largest hidden count considered.")
  in
  Cmd.v
    (Cmd.info "leak"
       ~doc:"Quantify information leakage (bits) of cache schemes via Bayesian inference.")
    Term.(const run $ k $ delta $ max_count)

(* --- interact: conversation-detection experiment --- *)

let interact_cmd =
  let run unpredictable trials frames seed =
    let naming =
      if unpredictable then Core.Interactive_session.Unpredictable "dh-secret"
      else Core.Interactive_session.Predictable
    in
    let r = Attack.Interaction_attack.run ~naming ~trials ~frames ~seed () in
    Format.printf
      "conversation detection (%s names): accuracy %.2f, %d false positives, %d false negatives over %d trials@."
      (if unpredictable then "unpredictable" else "predictable")
      r.Attack.Interaction_attack.accuracy
      r.Attack.Interaction_attack.false_positives
      r.Attack.Interaction_attack.false_negatives r.Attack.Interaction_attack.trials
  in
  let unpredictable =
    Arg.(value & flag & info [ "unpredictable" ] ~doc:"Protect the session with HMAC-derived names.")
  in
  let trials = Arg.(value & opt int 16 & info [ "trials" ] ~docv:"N" ~doc:"Trials.") in
  let frames = Arg.(value & opt int 12 & info [ "frames" ] ~docv:"N" ~doc:"Frames per call.") in
  Cmd.v
    (Cmd.info "interact"
       ~doc:"Detect two-way interactive communication through the shared router.")
    Term.(const run $ unpredictable $ trials $ frames $ seed_arg)

(* --- probe: one-off interactive probing --- *)

let probe_cmd =
  let run topology warm target scope seed shards trace_file trace_format faults
      =
    let tracer =
      if trace_file <> None then Sim.Trace.create () else Sim.Trace.disabled
    in
    let setup = (make_setup_of_topology ?shards topology) ~seed ~tracer in
    let out = result_formatter trace_file in
    install_faults_or_die setup.Ndn.Network.net faults;
    List.iter
      (fun w ->
        ignore
          (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user
             (Ndn.Name.of_string w));
        Format.fprintf out "warmed %s (via honest user U)@." w)
      warm;
    let name = Ndn.Name.of_string target in
    (match
       Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary
         ?scope ~timeout_ms:1000. name
     with
    | Some rtt -> Format.fprintf out "probe %s -> %.3f ms@." target rtt
    | None -> Format.fprintf out "probe %s -> timeout@." target);
    match trace_file with
    | Some file -> write_trace ~file ~format:trace_format tracer
    | None -> ()
  in
  let warm =
    Arg.(
      value & opt_all string []
      & info [ "warm" ] ~docv:"NAME" ~doc:"Content the honest user fetches first (repeatable).")
  in
  let target =
    Arg.(value & opt string "/prod/x" & info [ "target" ] ~docv:"NAME" ~doc:"Name to probe.")
  in
  let scope =
    Arg.(value & opt (some int) None & info [ "scope" ] ~docv:"N" ~doc:"Interest scope field.")
  in
  Cmd.v
    (Cmd.info "probe" ~doc:"Issue a single adversarial probe in a chosen topology.")
    Term.(
      const run $ topology_arg $ warm $ target $ scope $ seed_arg $ shards_arg
      $ trace_file_arg $ trace_format_arg $ faults_arg)

(* --- topo: run probes in a user-defined topology --- *)

let topo_cmd =
  let run file generate warm_node warm probe_node target scope seed trace_file
      trace_format faults =
    let tracer =
      if trace_file <> None then Sim.Trace.create () else Sim.Trace.disabled
    in
    let parsed =
      match (file, generate) with
      | Some _, Some _ ->
        Format.eprintf "--file and --generate are mutually exclusive@.";
        exit 1
      | Some file, None ->
        Ndn.Topology_spec.parse_file ~seed ~tracer ~path:file ()
      | None, Some directive ->
        let text = "generate " ^ directive ^ "\n" in
        Result.bind (Ndn.Topology_spec.parse_spec text) (fun spec ->
            (* Surface the generated graph before building: canonical
               directive plus its structural summary. *)
            List.iter
              (function
                | _, (Ndn.Topology_spec.Generate_decl d as dir) ->
                  let g = Ndn.Topology_spec.Gen.graph_of d in
                  Format.printf "%s@."
                    (Ndn.Topology_spec.print [ (1, dir) ] |> String.trim);
                  Format.printf
                    "generated: %d routers, %d links, diameter %d, root %s, \
                     producer %s, hop limit %d, pit lifetime %.0f ms@."
                    g.Ndn.Topology_spec.Gen.node_count
                    (List.length g.Ndn.Topology_spec.Gen.edges)
                    g.Ndn.Topology_spec.Gen.diameter
                    (Ndn.Topology_spec.Gen.node_label d g
                       g.Ndn.Topology_spec.Gen.root)
                    (Ndn.Topology_spec.Gen.producer_label d)
                    (Ndn.Topology_spec.Gen.hop_limit g)
                    (Ndn.Topology_spec.Gen.interest_lifetime_ms d g)
                | _ -> ())
              spec;
            Ndn.Topology_spec.build ~seed ~tracer spec)
      | None, None ->
        Format.eprintf "one of --file or --generate is required@.";
        exit 1
    in
    match parsed with
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 1
    | Ok topo ->
      let out = result_formatter trace_file in
      install_faults_or_die topo.Ndn.Topology_spec.network faults;
      let names = List.map fst topo.Ndn.Topology_spec.nodes in
      let shown =
        let n = List.length names in
        if n <= 16 then String.concat ", " names
        else
          String.concat ", " (List.filteri (fun i _ -> i < 16) names)
          ^ Printf.sprintf ", … %d more" (n - 16)
      in
      Format.fprintf out "topology: %d nodes (%s)@."
        (List.length topo.Ndn.Topology_spec.nodes)
        shown;
      let resolve label =
        match List.assoc_opt label topo.Ndn.Topology_spec.nodes with
        | Some node -> node
        | None ->
          Format.eprintf "no node %S in the topology@." label;
          exit 1
      in
      List.iter
        (fun w ->
          match
            Ndn.Network.fetch_rtt topo.Ndn.Topology_spec.network
              ~from:(resolve warm_node) (Ndn.Name.of_string w)
          with
          | Some rtt -> Format.fprintf out "%s fetched %s: %.3f ms@." warm_node w rtt
          | None -> Format.fprintf out "%s fetch of %s timed out@." warm_node w)
        warm;
      (match target with
      | Some t -> (
        match
          Ndn.Network.fetch_rtt topo.Ndn.Topology_spec.network
            ~from:(resolve probe_node) ?scope ~timeout_ms:1000.
            (Ndn.Name.of_string t)
        with
        | Some rtt -> Format.fprintf out "%s probes %s: %.3f ms@." probe_node t rtt
        | None -> Format.fprintf out "%s probes %s: timeout@." probe_node t)
      | None -> ());
      (match trace_file with
      | Some file -> write_trace ~file ~format:trace_format tracer
      | None -> ())
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Topology specification file.")
  in
  let generate =
    Arg.(
      value
      & opt (some string) None
      & info [ "generate" ] ~docv:"DIRECTIVE"
          ~doc:
            "Generate the topology instead of reading a file: the body of a \
             generate directive, e.g. 'tree name=isp arity=10 tiers=5' or \
             'ws name=sw n=200 k=6 beta=0.2'.  Prints the canonical \
             directive and the graph summary, then runs warm fetches and \
             the probe as with --file.")
  in
  let warm_node =
    Arg.(value & opt string "U" & info [ "warm-node" ] ~docv:"NODE" ~doc:"Node issuing warm fetches.")
  in
  let warm =
    Arg.(value & opt_all string [] & info [ "warm" ] ~docv:"NAME" ~doc:"Content to pre-fetch (repeatable).")
  in
  let probe_node =
    Arg.(value & opt string "Adv" & info [ "probe-node" ] ~docv:"NODE" ~doc:"Node issuing the probe.")
  in
  let target =
    Arg.(value & opt (some string) None & info [ "target" ] ~docv:"NAME" ~doc:"Name to probe.")
  in
  let scope =
    Arg.(value & opt (some int) None & info [ "scope" ] ~docv:"N" ~doc:"Probe scope field.")
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Run fetches and probes in a topology defined in a spec file or \
          generated on the fly (--generate).")
    Term.(
      const run $ file $ generate $ warm_node $ warm $ probe_node $ target
      $ scope $ seed_arg $ trace_file_arg $ trace_format_arg $ faults_arg)

(* --- flood: graceful degradation under interest flooding --- *)

let flood_cmd =
  let run topology rate duration pit_capacity admission queue_rate queue_depth
      fetches seed shards trace_file trace_format faults =
    let tracer =
      if trace_file <> None then Sim.Trace.create () else Sim.Trace.disabled
    in
    let setup = (make_setup_of_topology ?shards topology) ~seed ~tracer in
    let net = setup.Ndn.Network.net in
    let out = result_formatter trace_file in
    install_faults_or_die net faults;
    (match queue_rate with
    | None -> ()
    | Some mbps ->
      let a = Ndn.Node.label setup.Ndn.Network.router
      and b = Ndn.Node.label setup.Ndn.Network.producer_host in
      (match
         Ndn.Network.set_link_queue net ~a ~b ~rate_mbps:mbps
           ~depth:queue_depth ()
       with
      | Ok () ->
        Format.fprintf out "queue: %s<->%s at %.2f Mbps, depth %d@." a b mbps
          queue_depth
      | Error msg ->
        Format.eprintf "--queue-rate: %s@." msg;
        exit 1));
    let fl =
      arm_flood ~setup ~rate ~until:duration ~pit_capacity ~admission ~seed
    in
    (* Honest cohort: backoff-armed fetches from U spread across the
       flood window, measuring what the robust plane salvages. *)
    let completed = ref 0
    and give_ups = ref 0
    and honest_nacks = ref 0
    and latency_sum = ref 0. in
    let backoff =
      Ndn.Consumer.backoff ~jitter:0.2 (Sim.Rng.create (seed + 0xBac0))
    in
    let user = setup.Ndn.Network.user in
    let step = duration /. float_of_int (max 1 fetches) in
    for i = 1 to fetches do
      let name =
        Ndn.Name.append setup.Ndn.Network.prefix
          (Printf.sprintf "flood-honest-%d" i)
      in
      Ndn.Node.schedule_app_at user
        ~time:(step *. float_of_int i)
        (fun () ->
          Ndn.Consumer.fetch user ~max_retries:3 ~backoff
            ~on_done:(fun o ->
              incr completed;
              honest_nacks := !honest_nacks + o.Ndn.Consumer.nacks;
              match o.Ndn.Consumer.data with
              | None -> incr give_ups
              | Some _ -> latency_sum := !latency_sum +. o.Ndn.Consumer.elapsed_ms)
            name)
    done;
    Ndn.Network.run net;
    Format.fprintf out
      "flood: %.2f interests/ms for %.0f ms -> %d issued, %d NACKed, %d \
       timed out@."
      rate duration
      (Workload.Flood.interests_issued fl)
      (Workload.Flood.nacks_received fl)
      (Workload.Flood.timeouts fl);
    let pit = Ndn.Node.pit setup.Ndn.Network.router in
    (match pit_capacity with
    | Some c ->
      Format.fprintf out
        "router PIT: capacity %d (%s), %d rejections, %d evictions@." c
        (Ndn.Pit.admission_to_string admission)
        (Ndn.Pit.rejections pit) (Ndn.Pit.evictions pit)
    | None ->
      Format.fprintf out "router PIT: unbounded, peak-free legacy plane@.");
    let delivered = !completed - !give_ups in
    Format.fprintf out
      "honest: %d/%d fetches delivered (%d gave up), %d NACK fast-failures, \
       mean latency %.2f ms@."
      delivered !completed !give_ups !honest_nacks
      (if delivered = 0 then 0. else !latency_sum /. float_of_int delivered);
    match trace_file with
    | Some file -> write_trace ~file ~format:trace_format tracer
    | None -> ()
  in
  let rate =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"R"
          ~doc:"Flood intensity: unsatisfiable interests per virtual ms.")
  in
  let duration =
    Arg.(
      value & opt float 2000.
      & info [ "duration" ] ~docv:"MS" ~doc:"Flood window in virtual ms.")
  in
  let queue_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "queue-rate" ] ~docv:"MBPS"
          ~doc:
            "Bound the router-producer link with a transmission queue \
             serializing at $(docv) Mbps (default: latency-only legacy \
             links).")
  in
  let queue_depth =
    Arg.(
      value & opt int 32
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Packets the bounded link queue holds before dropping.")
  in
  let fetches =
    Arg.(
      value & opt int 10
      & info [ "fetches" ] ~docv:"N"
          ~doc:"Honest backoff-armed fetches spread across the flood window.")
  in
  Cmd.v
    (Cmd.info "flood"
       ~doc:
         "Flood a measurement topology with unsatisfiable interests \
          (PIT-exhaustion DoS) and report how the robust plane — finite \
          PIT, NACKs, bounded queues, consumer backoff — degrades.")
    Term.(
      const run $ topology_arg $ rate $ duration $ pit_capacity_arg
      $ admission_arg $ queue_rate $ queue_depth $ fetches $ seed_arg
      $ shards_arg $ trace_file_arg $ trace_format_arg $ faults_arg)

(* --- chaos: the attack under router churn --- *)

let chaos_cmd =
  let run topology restart_mean downtime horizon preserve_cs contents runs seed
      jobs shards trace_file trace_format faults =
    let schedule =
      match faults with
      | Some s -> s
      | None ->
        (* The probed cache's host: the shared router R everywhere
           except the local-host topology, where the host's own
           forwarder is probed. *)
        let router = match topology with `Local -> "host" | _ -> "R" in
        Sim.Fault.random_restarts
          ~rng:(Sim.Rng.create (seed + 0x5eed))
          ~nodes:[ router ] ~mean_uptime_ms:restart_mean ~downtime_ms:downtime
          ~horizon_ms:horizon ~preserve_cs ()
    in
    let out = result_formatter trace_file in
    Format.fprintf out "fault schedule (%d events):@.%s" (List.length schedule)
      (Sim.Fault.print schedule);
    let result =
      experiment_or_die (fun () ->
          Attack.Timing_experiment.run
            ~make_setup:(make_setup_of_topology ?shards topology)
            ~contents ~runs ~seed ?jobs ?shards ~faults:schedule
            ~trace:(trace_file <> None) ())
    in
    Attack.Timing_experiment.pp_result out result;
    let fnr = Attack.Timing_experiment.false_negative_rate result in
    if not (Float.is_nan fnr) then
      Format.fprintf out "attacker false-negative rate under churn: %.2f%%@."
        (100. *. fnr);
    match trace_file with
    | Some file ->
      write_trace ~file ~format:trace_format result.Attack.Timing_experiment.trace
    | None -> ()
  in
  let restart_mean =
    Arg.(
      value & opt float 3000.
      & info [ "restart-mean" ] ~docv:"MS"
          ~doc:"Mean router uptime between crashes (exponential).")
  in
  let downtime =
    Arg.(
      value & opt float 300.
      & info [ "downtime" ] ~docv:"MS" ~doc:"Downtime per crash before restart.")
  in
  let horizon =
    Arg.(
      value & opt float 20000.
      & info [ "horizon" ] ~docv:"MS" ~doc:"Crash process horizon per run.")
  in
  let preserve_cs =
    Arg.(
      value & flag
      & info [ "preserve-cs" ]
          ~doc:"Model a persistent Content Store that survives reboots.")
  in
  let contents =
    Arg.(value & opt int 40 & info [ "contents" ] ~docv:"N" ~doc:"Contents per run.")
  in
  let runs =
    Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc:"Independent runs.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Fan runs over $(docv) domains (default: one per hardware \
             thread).  Results and traces are identical for any value.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the timing attack under router churn: crash/restart the probed \
          router on a seeded random schedule (or one from $(b,--faults)) and \
          report per-phase distinguisher accuracy and the attacker's \
          false-negative rate.")
    Term.(
      const run $ topology_arg $ restart_mean $ downtime $ horizon
      $ preserve_cs $ contents $ runs $ seed_arg $ jobs $ shards_arg
      $ trace_file_arg $ trace_format_arg $ faults_arg)

let analyze_cmd =
  let run file json =
    let ic =
      if file = "-" then begin
        set_binary_mode_in stdin true;
        stdin
      end
      else
        try open_in_bin file
        with Sys_error msg ->
          Format.eprintf "ndnsim analyze: %s@." msg;
          exit 1
    in
    let result = Sim.Analyze.of_source (Sim.Trace_reader.of_channel ic) in
    if file <> "-" then close_in ic;
    match result with
    | Error e ->
      Format.eprintf "ndnsim analyze: %s: %s@."
        (if file = "-" then "<stdin>" else file)
        (Sim.Trace_reader.error_to_string e);
      exit 1
    | Ok acc ->
      print_string
        (if json then Sim.Analyze.render_json acc else Sim.Analyze.render_text acc)
  in
  let file =
    Arg.(
      value
      & pos 0 string "-"
      & info [] ~docv:"FILE"
          ~doc:
            "Trace file to analyze ($(b,binary) or $(b,jsonl), sniffed from \
             the stream prefix); $(b,-) (the default) reads stdin, so a \
             traced run pipes straight through: $(b,ndnsim attack --trace - \
             --trace-format binary | ndnsim analyze).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the deterministic JSON summary instead of the \
             human-readable one.  Byte-identical across the binary and JSONL \
             pipelines, so CI can diff the two.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Stream a trace through the single-pass analyzers"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Folds a recorded trace through mergeable streaming \
              accumulators in one pass — per-kind event counts, the \
              timing-attack confusion matrix (warm/cold probe hits), \
              per-tier cache hit rates, and link-delay statistics — without \
              ever materializing the trace, so traces far larger than memory \
              analyze in constant space.";
         ])
    Term.(const run $ file $ json)

let () =
  let doc = "NDN cache-privacy laboratory (ICDCS 2013 reproduction)" in
  let info = Cmd.info "ndnsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            attack_cmd;
            defend_cmd;
            trace_cmd;
            replay_cmd;
            theorems_cmd;
            probe_cmd;
            leak_cmd;
            interact_cmd;
            topo_cmd;
            flood_cmd;
            chaos_cmd;
            analyze_cmd;
          ]))
