(* Theorems VI.1-VI.4 confronted with ground truth:
   - privacy: exact achieved delta from exhaustive output enumeration
     vs the closed-form bounds;
   - utility: closed forms vs Monte-Carlo runs of Algorithm 1. *)

open Privacy

let run ~scale ~jobs () =
  Format.printf "@.================ Theorems VI.1-VI.4 ================@.";

  Format.printf "@.--- Theorem VI.1 (Uniform-Random-Cache privacy) ---@.";
  Format.printf "%6s %6s | %14s | %14s@." "k" "K" "bound 2k/K" "achieved delta";
  List.iter
    (fun (k, domain) ->
      let k_dist = Theorems.Uniform.k_dist ~domain in
      let achieved =
        Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k) ~eps:0.
      in
      Format.printf "%6d %6d | %14.5f | %14.5f@." k domain
        (Theorems.Uniform.delta ~k ~domain)
        achieved)
    [ (1, 20); (1, 100); (5, 200); (5, 1000); (10, 400) ];

  Format.printf "@.--- Theorem VI.3 (Exponential-Random-Cache privacy) ---@.";
  Format.printf "%6s %8s %6s | %10s | %14s | %14s@." "k" "alpha" "K" "eps"
    "bound delta" "achieved delta";
  List.iter
    (fun (k, alpha, domain) ->
      let k_dist = Theorems.Exponential.k_dist ~alpha ~domain in
      let eps = Theorems.Exponential.epsilon ~k ~alpha in
      let achieved = Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k) ~eps in
      Format.printf "%6d %8.4f %6d | %10.5f | %14.5f | %14.5f@." k alpha domain
        eps
        (Theorems.Exponential.delta ~k ~alpha ~domain)
        achieved)
    [ (1, 0.9, 50); (5, 0.99, 200); (5, 0.999, 267); (3, 0.95, 100) ];

  Format.printf "@.--- finite-probe anomaly (reproduction finding) ---@.";
  Format.printf
    "Theorem VI.1's bound assumes probing sequences of length t >= K;@.";
  Format.printf "for t < K the all-miss output leaks extra mass at eps = 0:@.";
  let k_dist = Theorems.Uniform.k_dist ~domain:10 in
  List.iter
    (fun probes ->
      Format.printf "  K=10 k=1 t=%2d: achieved delta = %.3f (bound 0.200)@." probes
        (Outputs.achieved_delta ~k_dist ~k:1 ~probes ~eps:0.))
    [ 3; 6; 9; 10; 15 ];

  Format.printf "@.--- Theorems VI.2 / VI.4 (utility) vs Monte-Carlo ---@.";
  let trials = 20_000 * scale in
  (* Monte-Carlo over a fixed 64-chunk decomposition: chunk [i] draws
     from the [i]-th split of the root generator regardless of [jobs],
     and integer chunk totals merge exactly, so the estimate is
     identical for any degree of parallelism. *)
  let mc_chunks = 64 in
  let mc_expected_misses ~sample ~c =
    let total =
      Sim.Parallel.run_reduce ~jobs ~seed:99 ~trials:mc_chunks
        ~merge:( + ) ~init:0
        (fun ~trial ~rng ->
          let chunk_trials =
            (trials / mc_chunks) + (if trial < trials mod mc_chunks then 1 else 0)
          in
          let total = ref 0 in
          for _ = 1 to chunk_trials do
            let k = sample rng in
            for i = 1 to c do
              if i = 1 || i - 1 <= k then incr total
            done
          done;
          !total)
    in
    float_of_int total /. float_of_int trials
  in
  Format.printf "%28s | %8s | %12s | %12s | %12s@." "scheme" "c"
    "paper E[M]" "exact E[M]" "monte carlo";
  List.iter
    (fun c ->
      let domain = 40 in
      Format.printf "%28s | %8d | %12.4f | %12.4f | %12.4f@."
        (Printf.sprintf "Uniform K=%d" domain)
        c
        (Theorems.Uniform.expected_misses_paper ~c ~domain)
        (Theorems.Uniform.expected_misses_exact ~c ~domain)
        (mc_expected_misses ~sample:(fun rng -> Sim.Rng.int rng domain) ~c))
    [ 1; 10; 40; 80 ];
  List.iter
    (fun c ->
      let alpha = 0.95 and domain = 40 in
      let kd = Core.Kdist.Truncated_geometric { alpha; domain } in
      Format.printf "%28s | %8d | %12.4f | %12.4f | %12.4f@."
        (Printf.sprintf "Expo a=%.2f K=%d" alpha domain)
        c
        (Theorems.Exponential.expected_misses_paper ~c ~alpha ~domain)
        (Theorems.Exponential.expected_misses_exact ~c ~alpha ~domain)
        (mc_expected_misses ~sample:(fun rng -> Core.Kdist.sample kd rng) ~c))
    [ 1; 10; 40; 80 ];
  Format.printf
    "(note: Theorem VI.2's printed form counts min(k_C, c) misses — one below@.";
  Format.printf
    " Algorithm 1's min(k_C+1, c); Theorem VI.4 matches Algorithm 1 exactly)@.";

  Format.printf "@.--- information leakage (bits) of a full probing campaign ---@.";
  Format.printf
    "hidden request count uniform on 0..8 (%.3f bits of secret); adversary probes@."
    (Bayes.entropy (Dist.uniform_int 9));
  Format.printf "to saturation and performs optimal Bayesian inference:@.";
  Format.printf "%34s | %12s | %12s | %10s@." "scheme" "leak (bits)" "MAP exact"
    "mean |err|";
  let schemes =
    [|
      ("naive threshold k=6", Core.Kdist.Constant 6);
      ("Uniform-Random-Cache K=60", Core.Kdist.Uniform 60);
      ( "Expo-Random-Cache a=.95 K=60",
        Core.Kdist.Truncated_geometric { alpha = 0.95; domain = 60 } );
    |]
  in
  (* Each scheme's campaign is deterministic in Popularity_attack's own
     seed; evaluate the rows on the pool and print them in order. *)
  Sim.Parallel.map ~jobs (Array.length schemes) (fun i ->
      let label, kdist = schemes.(i) in
      let leak =
        Attack.Popularity_attack.information_leak_bits ~kdist ~max_count:8
          ~probes:70
      in
      let r =
        Attack.Popularity_attack.run ~kdist ~true_count:4 ~max_count:8
          ~trials:(200 * scale) ()
      in
      (label, leak, r))
  |> Array.iter (fun (label, leak, r) ->
         Format.printf "%34s | %12.3f | %12.2f | %10.2f@." label leak
           r.Attack.Popularity_attack.exact_rate
           r.Attack.Popularity_attack.mean_abs_error);
  Format.printf
    "(the naive scheme discloses nearly the whole secret; Random-Cache@.";
  Format.printf " leaks a fraction of a bit — Definition IV.3 made concrete)@.";

  Format.printf
    "@.--- composition: probing n independent private contents ---@.";
  let k = 2 and domain = 20 in
  let k_dist = Theorems.Uniform.k_dist ~domain in
  let single = Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k) ~eps:0. in
  Format.printf
    "Uniform-Random-Cache K=%d, k=%d: single-content delta = %.4f@." domain k
    single;
  Format.printf "%4s | %14s | %14s@." "n" "basic n*delta" "exact joint";
  List.iter
    (fun n ->
      let basic = float_of_int n *. single in
      let exact =
        Composition.exact_joint_delta ~k_dist ~k ~probes:(domain + k) ~eps:0. ~n
      in
      Format.printf "%4d | %14.4f | %14.4f@." n basic exact)
    [ 1; 2; 3 ];
  Format.printf
    "(joint leakage grows essentially linearly: deployments must budget K@.";
  Format.printf
    " for the adversary's whole campaign, not one content — see@.";
  Format.printf " Privacy.Composition)@."
