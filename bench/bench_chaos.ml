(* Attack accuracy and Random-Cache utility under router churn.

   The paper's evaluation assumes a stable network; this sweep asks
   what a restart-prone first-hop router does to both sides of the
   privacy trade-off: every reboot flushes R's Content Store, which
   (a) erases the adversary's signal — warm probes issued after a
   flush look cold, i.e. false negatives — and (b) erases the cache
   the honest population was benefiting from, so Random-Cache utility
   degrades too.  Schedules come from Sim.Fault.random_restarts, so a
   (seed, mean-uptime) pair names the churn process exactly and the
   sweep is reproducible for any --jobs. *)

let section fmt = Format.printf fmt

let horizon_ms = 20_000.
let downtime_ms = 400.
let router = "R"

(* Mean uptimes swept, in ms; [infinity] is the stable baseline. *)
let mean_uptimes = [ infinity; 8_000.; 4_000.; 2_000.; 1_000. ]

let schedule_for ?(nodes = [ router ]) ~seed mean =
  if Float.is_finite mean then
    Sim.Fault.random_restarts
      ~rng:(Sim.Rng.create seed)
      ~nodes ~mean_uptime_ms:mean ~downtime_ms ~horizon_ms ()
  else Sim.Fault.empty

let crashes schedule =
  List.length
    (List.filter
       (fun e ->
         match e.Sim.Fault.kind with Sim.Fault.Node_crash _ -> true | _ -> false)
       schedule)

let fmt_mean mean =
  if Float.is_finite mean then Printf.sprintf "%6.0f" mean else "  none"

let pct x =
  if Float.is_nan x then "    -" else Printf.sprintf "%5.1f%%" (100. *. x)

(* --- attacker accuracy / false-negative rate ------------------------- *)

let attack_sweep ~label ~make_setup ~contents ~runs ~jobs =
  section "@.%s: attacker vs. router restart rate@." label;
  section
    "  mean-uptime(ms)  crashes  distinguisher  false-negative-rate@.";
  List.iteri
    (fun i mean ->
      let faults = schedule_for ~seed:(0x5eed + i) mean in
      let r =
        Attack.Timing_experiment.run ~make_setup ~contents ~runs ~jobs ~faults
          ()
      in
      let fnr =
        if faults = Sim.Fault.empty then 0.
        else Attack.Timing_experiment.false_negative_rate r
      in
      section "  %15s  %7d  %13s  %19s@." (fmt_mean mean) (crashes faults)
        (pct r.Attack.Timing_experiment.success_rate)
        (pct fnr))
    mean_uptimes

(* --- Random-Cache utility -------------------------------------------- *)

(* One honest consumer cycles through a fixed working set behind
   Random-Cache routers (Uniform, k=10, delta=0.5, namespace grouping)
   — Algorithm 1 runs on every caching router of the consumer's path,
   as a deployment would, and the churn process restarts each of them
   independently.  Utility = fraction of requests some router served
   as a revealed cache hit; churn lowers it because every flush forces
   the working set back through the miss path (and through fresh
   thresholds). *)
let utility_run ~make_setup ~routers ~faults ~working_set ~requests run =
  let setup =
    make_setup ~seed:(211 + run) ~tracer:Sim.Trace.disabled
  in
  let net = setup.Ndn.Network.net in
  let prs =
    List.map
      (fun label ->
        match Ndn.Network.node net label with
        | Some n ->
          Core.Private_router.attach n
            ~rng:(Ndn.Network.rng net)
            (Core.Private_router.Random_cache_mimic
               {
                 kdist = Core.Kdist.uniform_for ~k:10 ~delta:0.5;
                 grouping = Core.Grouping.By_namespace 2;
               })
        | None -> failwith ("utility_run: topology has no router " ^ label))
      routers
  in
  (match Ndn.Network.install_faults net faults with
  | Ok () -> ()
  | Error msg -> failwith ("utility_run: " ^ msg));
  let engine = Ndn.Network.engine net in
  let names =
    Array.init working_set (fun i ->
        Ndn.Name.of_string (Printf.sprintf "/prod/pop/%d" i))
  in
  let step = horizon_ms /. float_of_int requests in
  for i = 0 to requests - 1 do
    ignore
      (Sim.Engine.schedule_at engine
         ~time:(float_of_int i *. step)
         (fun () ->
           Ndn.Node.express_interest setup.Ndn.Network.user
             ~on_data:(fun ~rtt_ms:_ _ -> ())
             names.(i mod working_set)))
  done;
  Sim.Engine.run engine;
  let served, hidden =
    List.fold_left
      (fun (s, h) pr ->
        let st = Core.Private_router.stats pr in
        ( s + st.Core.Private_router.private_hits_served,
          h + st.Core.Private_router.private_hits_hidden ))
      (0, 0) prs
  in
  (served, hidden, requests)

let utility_sweep ~label ~make_setup ~routers ~runs ~jobs =
  let working_set = 25 and requests = 400 in
  section
    "@.%s: Random-Cache (uniform k=10 delta=0.5) utility vs. restart rate@."
    label;
  section
    "  (%d requests over a %d-name working set per run, %d runs; Algorithm \
     1 on %s)@."
    requests working_set runs
    (String.concat ", " routers);
  section "  mean-uptime(ms)  crashes  hits-served  hits-hidden  utility@.";
  List.iteri
    (fun i mean ->
      let faults = schedule_for ~nodes:routers ~seed:(0xca5e + i) mean in
      let per_run =
        Sim.Parallel.map ~jobs runs
          (utility_run ~make_setup ~routers ~faults ~working_set ~requests)
      in
      let served, hidden, total =
        Array.fold_left
          (fun (s, h, t) (s', h', t') -> (s + s', h + h', t + t'))
          (0, 0, 0) per_run
      in
      section "  %15s  %7d  %11d  %11d  %6s@." (fmt_mean mean)
        (crashes faults) served hidden
        (pct (float_of_int served /. float_of_int total)))
    mean_uptimes

let run ~scale ~jobs () =
  section
    "@.================ Chaos: attack accuracy and cache utility under \
     churn ================@.";
  section
    "restart process: exponential uptimes, %.0f ms reboot, %.0f ms horizon \
     (Sim.Fault.random_restarts on %s)@."
    downtime_ms horizon_ms router;
  let contents = 25 * scale and runs = 2 * scale in
  attack_sweep ~label:"LAN"
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
    ~contents ~runs ~jobs;
  attack_sweep ~label:"WAN"
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.wan ~seed ~tracer ())
    ~contents ~runs ~jobs;
  let private_producer =
    { Ndn.Network.default_producer_config with producer_private = true }
  in
  utility_sweep ~label:"LAN"
    ~make_setup:(fun ~seed ~tracer ->
      Ndn.Network.lan ~seed ~tracer ~producer:private_producer ())
    ~routers:[ router ] ~runs ~jobs;
  (* In the WAN topology the user reaches R through a caching
     intermediate hop, which serves the repeats — so it runs
     Algorithm 1 (and suffers churn) too. *)
  utility_sweep ~label:"WAN"
    ~make_setup:(fun ~seed ~tracer ->
      Ndn.Network.wan ~seed ~tracer ~producer:private_producer ())
    ~routers:[ "U-hop1"; router ] ~runs ~jobs
