(* Figure 5: cache-hit rates when replaying the (synthetic) IRCache
   proxy trace through the four cache-management algorithms.

   Paper parameters: k = 5, eps = 0.005, LRU caches of
   {2000, 4000, 8000, 16000, 32000, Inf}; content randomly divided into
   private and non-private. delta (left open by the paper) = 0.05. *)

let cache_sizes = [ 2000; 4000; 8000; 16000; 32000; 0 ]

let k = 5
let eps = 0.005
let delta = 0.05

let kdists () =
  let uniform = Core.Kdist.uniform_for ~k ~delta in
  let exponential =
    match Core.Kdist.exponential_for ~k ~eps ~delta with
    | Some kd -> kd
    | None -> failwith "exponential parameters infeasible"
  in
  (uniform, exponential)

let run ~scale ~jobs () =
  let requests = 100_000 * scale in
  Format.printf "@.================ Figure 5: trace-driven evaluation ================@.";
  let cfg = { Workload.Ircache.default with Workload.Ircache.requests } in
  Format.printf "trace: %a@." Workload.Ircache.pp_config cfg;
  let trace = Workload.Ircache.generate cfg in
  Format.printf "generated: %a@." Workload.Trace.pp_summary trace;
  let uniform, exponential = kdists () in
  Format.printf "parameters: k=%d eps=%.3f delta=%.2f uniform=%a expo=%a@." k eps
    delta Core.Kdist.pp uniform Core.Kdist.pp exponential;
  (* (a) all four policies at 20% private content *)
  Format.printf
    "@.--- Figure 5(a): cache hit rate (%%), 20%% private content ---@.";
  Format.printf
    "paper shape: No Privacy > {Exponential ~ Uniform} > Always Delay, all rising with@.";
  Format.printf
    "cache size (at eps = 0.005 the two Random-Cache curves nearly coincide)@.";
  let rows =
    Workload.Metrics.sweep trace ~cache_sizes
      ~policies:
        [
          Core.Policy.No_privacy;
          Core.Policy.Random_cache exponential;
          Core.Policy.Random_cache uniform;
          Core.Policy.Always_delay;
        ]
      ~private_fraction:0.2 ~jobs ()
  in
  Workload.Metrics.pp_table
    ~series_of:(fun r -> r.Workload.Metrics.policy_label)
    Format.std_formatter rows;
  (* (b) the exponential scheme across private fractions *)
  Format.printf
    "@.--- Figure 5(b): Exponential-Random-Cache, varying private fraction ---@.";
  let rows_b =
    Workload.Metrics.sweep_private_fraction trace ~cache_sizes
      ~policy:(Core.Policy.Random_cache exponential)
      ~fractions:[ 0.05; 0.1; 0.2; 0.4 ] ~jobs ()
  in
  Workload.Metrics.pp_table
    ~series_of:(fun r ->
      Printf.sprintf "%.0f%% Private" (100. *. r.Workload.Metrics.private_fraction))
    Format.std_formatter rows_b;
  (* Seed-sensitivity of one representative cell: a multi-trial
     ensemble under varying seeds, merged with Metrics.merge.  Trial
     [i] is a pure function of [seed + i], so the line is identical for
     any --jobs. *)
  Format.printf
    "@.--- Figure 5 seed sensitivity: Exponential RC, cache 8000, 8 seeds ---@.";
  let agg =
    Workload.Metrics.replay_trials trace
      {
        Workload.Replay.default_config with
        Workload.Replay.cache_capacity = 8000;
        policy = Core.Policy.Random_cache exponential;
        private_mode = Workload.Replay.Per_content 0.2;
      }
      ~trials:8 ~jobs ()
  in
  Format.printf "%a@." Workload.Metrics.pp_agg agg
