(* bench scale: internet-scale cache privacy on a generated ISP tree.

   Builds a tiered hierarchy with one [generate tree] directive, drives
   it with aggregate edge consumers (Workload.Aggregate: one entity per
   access router standing for its user population), then runs the
   paper's timing attack per tier:

   - warm phase: every access router's aggregate issues a Zipf +
     diurnal-modulated request stream for a window of virtual time;
     per-tier cache hit rates are read off the node counters;
   - calibration: for each tier, plant a unique name so the first cache
     on the adversary's path holding it sits exactly at that tier
     (fetch it from an access router whose path joins the adversary's
     at that tier), measure the probe RTT once — an empirical centroid
     per serving tier, no analytic latency model needed;
   - sweep: probe a mix of popular, mid-tail and fresh names from an
     adversary host behind one access router.  Ground truth is the
     first cache on the upward path with the name in its CS (read
     non-mutatingly before the probe); the attacker's guess is the
     nearest calibration centroid.  Per-tier accuracy is the fraction
     of probes whose guess matches the truth.

   Default scale: arity 10, 5 tiers = 11,111 routers, 10,000 access
   routers x 100 users = 1M represented users.  --quick: arity 14,
   3 tiers = 211 routers for the CI smoke job.

   Outputs: per-tier CSV (BENCH_scale_tiers.csv) and an events/sec
   entry spliced into BENCH_core.json under "bench_scale". *)

let clock_ns () = Int64.to_float (Monotonic_clock.now ())

type params = {
  arity : int;
  ntiers : int;
  users_per_edge : int;
  warm_ms : float;
  probes : int;
  spec : string;
}

let params ~quick =
  if quick then
    {
      arity = 14;
      ntiers = 3;
      users_per_edge = 100;
      warm_ms = 60_000.;
      probes = 60;
      spec =
        "generate tree name=scale arity=14 cs=4096,1024,256 \
         latency=const:8,const:2,const:1 payload=16 seed=7";
    }
  else
    {
      arity = 10;
      ntiers = 5;
      users_per_edge = 100;
      warm_ms = 600_000.;
      probes = 200;
      spec =
        "generate tree name=scale arity=10 \
         cs=8192,4096,1024,512,256 \
         latency=const:8,const:4,const:2,const:1,const:0.5 payload=16 seed=7";
    }

(* ------------------------------------------------------------------ *)
(* BENCH_core.json splicing: replace or add the "bench_scale" member
   without disturbing whatever bench core last wrote. *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let splice_bench_core entry =
  let path = "BENCH_core.json" in
  let marker = ",\n  \"bench_scale\":" in
  let base =
    match open_in path with
    | exception Sys_error _ -> "{\n  \"suite\": \"bench-core\""
    | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match find_substring text marker with
      | Some i -> String.sub text 0 i
      | None -> (
        (* Strip the final closing brace (and trailing whitespace). *)
        match String.rindex_opt text '}' with
        | Some i ->
          let prefix = String.sub text 0 i in
          let len = ref (String.length prefix) in
          while
            !len > 0
            && (prefix.[!len - 1] = '\n' || prefix.[!len - 1] = ' ')
          do
            decr len
          done;
          String.sub prefix 0 !len
        | None -> "{\n  \"suite\": \"bench-core\""))
  in
  let oc = open_out path in
  output_string oc (base ^ marker ^ " " ^ entry ^ "\n}\n");
  close_out oc

(* ------------------------------------------------------------------ *)

module TS = Ndn.Topology_spec

(* One warm phase: build the tree (optionally sharded over [shards]
   engine domains), attach one aggregate consumer per access router,
   run to quiescence and measure.  Shared by the reported run and the
   [--shards] sweep so every sweep point replays the identical
   workload — shard mode is shard-count-invariant, so [events],
   [issued] and [timeouts] must agree across sweep points (checked by
   the caller); only [wall_s] may differ. *)
type warm_result = {
  wnet : Ndn.Network.t;
  wevents : int;
  wwall_s : float;
  wissued : int;
  wtimeouts : int;
}

let aggregate_config p =
  {
    Workload.Aggregate.default with
    users = p.users_per_edge;
    catalog = 10_000;
    zipf_s = 0.85;
    diurnal_amplitude = 0.5;
    diurnal_period_ms = p.warm_ms;
    max_retries = 1;
  }

let warm_phase ~p ~spec ~decl ~g ?shards () =
  let topo =
    match TS.build ~seed:11 ?shards spec with
    | Ok t -> t
    | Error e -> failwith ("bench scale: build failed: " ^ e)
  in
  let net = topo.TS.network in
  let prefix = TS.Gen.prefix decl in
  let node_of i =
    match Ndn.Network.node net (TS.Gen.node_label decl g i) with
    | Some n -> n
    | None -> assert false
  in
  let config = aggregate_config p in
  let master = Sim.Rng.create 2013 in
  let aggregates =
    List.map
      (fun i ->
        let rng = Sim.Rng.split master in
        Workload.Aggregate.attach config ~node:(node_of i) ~prefix ~rng
          ~until:p.warm_ms ())
      g.TS.Gen.edge_routers
  in
  let t0 = clock_ns () in
  let ev0 = Ndn.Network.events_processed net in
  Ndn.Network.run net;
  let wall_s = (clock_ns () -. t0) /. 1e9 in
  let events = Ndn.Network.events_processed net - ev0 in
  let issued =
    List.fold_left
      (fun acc a -> acc + Workload.Aggregate.requests_issued a)
      0 aggregates
  in
  let timeouts =
    List.fold_left
      (fun acc a -> acc + Workload.Aggregate.timeouts a)
      0 aggregates
  in
  {
    wnet = net;
    wevents = events;
    wwall_s = wall_s;
    wissued = issued;
    wtimeouts = timeouts;
  }

let run ~quick ?shards () =
  Format.printf
    "@.================ Scale: generated ISP tree + aggregate consumers \
     ================@.";
  let p = params ~quick in
  let spec =
    match TS.parse_spec p.spec with
    | Ok s -> s
    | Error e -> failwith ("bench scale: bad spec: " ^ e)
  in
  let decl =
    match
      List.find_map
        (function _, TS.Generate_decl d -> Some d | _ -> None)
        spec
    with
    | Some d -> d
    | None -> assert false
  in
  let g = TS.Gen.graph_of decl in
  let k = p.ntiers in
  (* Tier offsets: tier t spans [off.(t), off.(t+1)). *)
  let off = Array.make (k + 1) 0 in
  let counts = Array.make k 1 in
  for t = 1 to k - 1 do
    counts.(t) <- counts.(t - 1) * p.arity
  done;
  for t = 0 to k - 1 do
    off.(t + 1) <- off.(t) + counts.(t)
  done;
  Format.printf "graph: %d routers, %d links, diameter %d, %d access routers@."
    g.TS.Gen.node_count
    (List.length g.TS.Gen.edges)
    g.TS.Gen.diameter counts.(k - 1);

  (* --- warm phase: one aggregate consumer per access router --- *)
  let w = warm_phase ~p ~spec ~decl ~g ?shards () in
  let net = w.wnet in
  let prefix = TS.Gen.prefix decl in
  let label i = TS.Gen.node_label decl g i in
  let node_of i =
    match Ndn.Network.node net (label i) with
    | Some n -> n
    | None -> assert false
  in
  let events = w.wevents and wall_s = w.wwall_s in
  let issued = w.wissued and timeouts = w.wtimeouts in
  let events_per_sec = float_of_int events /. Float.max 1e-9 wall_s in
  (match shards with
  | None -> ()
  | Some n -> Format.printf "sharding: %d engine domains per network@." n);
  Format.printf
    "warm: %d requests from %d aggregates (%d users), %d timeouts@." issued
    counts.(k - 1)
    (p.users_per_edge * counts.(k - 1))
    timeouts;
  Format.printf "engine: %d events in %.2f s wall = %.0f events/s@." events
    wall_s events_per_sec;

  (* Per-tier hit rates over the warm phase. *)
  let tier_interests = Array.make k 0 in
  let tier_hits = Array.make k 0 in
  for t = 0 to k - 1 do
    for i = off.(t) to off.(t + 1) - 1 do
      let c = Ndn.Node.counters (node_of i) in
      tier_interests.(t) <- tier_interests.(t) + c.Ndn.Node.interests_received;
      tier_hits.(t) <- tier_hits.(t) + c.Ndn.Node.cache_responses
    done
  done;

  (* --- adversary host behind one access router --- *)
  let adv_leaf = off.(k - 1) + (counts.(k - 1) / 2) in
  let adv =
    Ndn.Network.add_node net ~cs_capacity:0 ~caching:false "scale-adv"
  in
  let adv_face, _ =
    Ndn.Network.connect net
      ~latency:(Sim.Latency.Constant 0.25)
      adv (node_of adv_leaf)
  in
  Ndn.Network.route net adv ~prefix ~via:adv_face;
  (* Ancestor chain: path.(t) is the adversary path's router at tier t
     (path.(k-1) = the access router itself). *)
  let parent = TS.Gen.parents g in
  let path = Array.make k adv_leaf in
  for t = k - 2 downto 0 do
    path.(t) <- parent.(path.(t + 1))
  done;
  (* Within-access-tier index of the adversary's leaf. *)
  let ia = adv_leaf - off.(k - 1) in
  let pow a b =
    let r = ref 1 in
    for _ = 1 to b do
      r := !r * a
    done;
    !r
  in
  (* Calibration: for tier l, a helper access router whose path joins
     the adversary's exactly at tier l — a leftmost access descendant
     of a sibling (at tier l+1) of the adversary's tier-(l+1)
     ancestor.  For l = k-1 the helper is the adversary's own access
     router. *)
  let helper_leaf l =
    if l = k - 1 then adv_leaf
    else begin
      let j = ia / pow p.arity (k - 2 - l) in
      let j' = if j mod p.arity < p.arity - 1 then j + 1 else j - 1 in
      off.(k - 1) + (j' * pow p.arity (k - 2 - l))
    end
  in
  let probe name = Ndn.Network.fetch_rtt net ~from:adv name in
  let centroids =
    Array.init k (fun l ->
        let cal = Ndn.Name.append prefix (Printf.sprintf "cal-%d" l) in
        ignore (Ndn.Network.fetch_rtt net ~from:(node_of (helper_leaf l)) cal);
        match probe cal with Some rtt -> rtt | None -> Float.infinity)
  in
  let origin_centroid =
    let cal = Ndn.Name.append prefix "cal-origin" in
    match probe cal with Some rtt -> rtt | None -> Float.infinity
  in
  Format.printf "centroids (rtt ms): origin %.2f,%s@." origin_centroid
    (String.concat ","
       (Array.to_list
          (Array.mapi (fun l c -> Printf.sprintf " t%d %.2f" l c) centroids)));

  (* --- probe sweep --- *)
  let classify rtt =
    (* Nearest centroid; -1 encodes "origin server". *)
    let best = ref (-1) and best_d = ref (Float.abs (rtt -. origin_centroid)) in
    Array.iteri
      (fun l c ->
        let d = Float.abs (rtt -. c) in
        if d < !best_d then begin
          best := l;
          best_d := d
        end)
      centroids;
    !best
  in
  (* The interest climbs adv → access (tier k-1) → … → core (tier 0)
     → P, so the deepest-tier cache on the path holding the name is
     the one that serves; -1 means it reaches the origin. *)
  let ground_truth name =
    let holds t =
      Ndn.Content_store.mem (Ndn.Node.content_store (node_of path.(t))) name
    in
    let rec deepest t = if t < 0 then -1 else if holds t then t else deepest (t - 1) in
    deepest (k - 1)
  in
  let probe_rng = Sim.Rng.create 4177 in
  let config = aggregate_config p in
  let zipf = Workload.Zipf.create ~n:config.catalog ~s:config.zipf_s in
  let tier_probes = Array.make (k + 1) 0 in
  let tier_correct = Array.make (k + 1) 0 in
  (* Index k holds the origin-served bucket. *)
  let bucket t = if t = -1 then k else t in
  for i = 1 to p.probes do
    (* A third fresh names (origin-served), a third head ranks (likely
       resident in the adversary's own access cache), a third Zipf
       draws (mid-tail, served wherever they last landed). *)
    let name =
      match i mod 3 with
      | 0 -> Ndn.Name.append prefix (Printf.sprintf "fresh-%d" i)
      | 1 -> Ndn.Name.append prefix (string_of_int ((i mod 8) + 1))
      | _ ->
        Ndn.Name.append prefix
          (string_of_int (Workload.Zipf.sample zipf probe_rng))
    in
    let truth = ground_truth name in
    match probe name with
    | None -> ()
    | Some rtt ->
      let guess = classify rtt in
      tier_probes.(bucket truth) <- tier_probes.(bucket truth) + 1;
      if guess = truth then
        tier_correct.(bucket truth) <- tier_correct.(bucket truth) + 1
  done;

  (* --- report --- *)
  let cs_of_tier t =
    match decl.TS.gen_model with
    | TS.Gen_tree { tiers; _ } -> (List.nth tiers t).TS.tier_cs
    | _ -> 0
  in
  let csv = Buffer.create 256 in
  Buffer.add_string csv
    "tier,routers,cs,interests,cache_hits,hit_rate,probes,correct,\
     attacker_accuracy\n";
  let total_probes = ref 0 and total_correct = ref 0 in
  for t = 0 to k - 1 do
    let hr =
      if tier_interests.(t) = 0 then 0.
      else float_of_int tier_hits.(t) /. float_of_int tier_interests.(t)
    in
    let acc =
      if tier_probes.(t) = 0 then 0.
      else float_of_int tier_correct.(t) /. float_of_int tier_probes.(t)
    in
    total_probes := !total_probes + tier_probes.(t);
    total_correct := !total_correct + tier_correct.(t);
    Buffer.add_string csv
      (Printf.sprintf "%d,%d,%d,%d,%d,%.4f,%d,%d,%.4f\n" t counts.(t)
         (cs_of_tier t) tier_interests.(t) tier_hits.(t) hr tier_probes.(t)
         tier_correct.(t) acc);
    Format.printf
      "tier %d: %6d routers  cs %5d  hit rate %5.1f%%  attacker accuracy \
       %5.1f%% (%d probes)@."
      t counts.(t) (cs_of_tier t) (100. *. hr) (100. *. acc) tier_probes.(t)
  done;
  let origin_acc =
    if tier_probes.(k) = 0 then 0.
    else float_of_int tier_correct.(k) /. float_of_int tier_probes.(k)
  in
  total_probes := !total_probes + tier_probes.(k);
  total_correct := !total_correct + tier_correct.(k);
  Buffer.add_string csv
    (Printf.sprintf "origin,0,0,0,0,0,%d,%d,%.4f\n" tier_probes.(k)
       tier_correct.(k) origin_acc);
  Format.printf "origin-served: attacker accuracy %5.1f%% (%d probes)@."
    (100. *. origin_acc)
    tier_probes.(k);
  let overall =
    if !total_probes = 0 then 0.
    else float_of_int !total_correct /. float_of_int !total_probes
  in
  Format.printf "overall attacker accuracy: %.1f%% over %d probes@."
    (100. *. overall) !total_probes;
  let oc = open_out "BENCH_scale_tiers.csv" in
  output_string oc (Buffer.contents csv);
  close_out oc;
  Format.printf "wrote BENCH_scale_tiers.csv@.";
  (* --- sharded warm-phase sweep (--shards N): replay the identical
     warm phase at shard counts 1 .. N and record events/s per point.
     Shard mode is shard-count-invariant, so the event/request/timeout
     totals must agree across points — an inline determinism check on
     top of the test suite's byte-level one.  Speedups are honest
     wall-clock ratios on this host: with fewer hardware threads than
     shards the extra domains time-slice and the ratio sits near (or
     below) 1. *)
  let sharded_json =
    match shards with
    | None -> ""
    | Some n ->
      let ks = List.sort_uniq compare [ 1; max 1 (n / 2); n ] in
      let rows =
        List.map
          (fun sk ->
            let r = warm_phase ~p ~spec ~decl ~g ~shards:sk () in
            Format.printf
              "shards %d: %d events in %.2f s wall = %.0f events/s@." sk
              r.wevents r.wwall_s
              (float_of_int r.wevents /. Float.max 1e-9 r.wwall_s);
            (sk, r))
          ks
      in
      List.iter
        (fun (sk, r) ->
          if
            r.wevents <> events || r.wissued <> issued
            || r.wtimeouts <> timeouts
          then
            failwith
              (Printf.sprintf
                 "bench scale: shard count %d changed the workload \
                  (events %d vs %d, requests %d vs %d) — shard-count \
                  invariance is broken"
                 sk r.wevents events r.wissued issued))
        rows;
      let base_wall =
        match List.assoc_opt 1 rows with
        | Some r -> r.wwall_s
        | None -> wall_s
      in
      Printf.sprintf ", \"host_domains\": %d, \"sharded\": [%s]"
        (Sim.Parallel.default_jobs ())
        (String.concat ", "
           (List.map
              (fun (sk, r) ->
                Printf.sprintf
                  "{\"shards\": %d, \"events\": %d, \"wall_s\": %.3f, \
                   \"events_per_sec\": %.0f, \"speedup_vs_1\": %.3f}"
                  sk r.wevents r.wwall_s
                  (float_of_int r.wevents /. Float.max 1e-9 r.wwall_s)
                  (base_wall /. Float.max 1e-9 r.wwall_s))
              rows))
  in
  splice_bench_core
    (Printf.sprintf
       "{\"quick\": %b, \"routers\": %d, \"access_routers\": %d, \
        \"represented_users\": %d, \"requests\": %d, \"events\": %d, \
        \"wall_s\": %.3f, \"events_per_sec\": %.0f, \
        \"attacker_accuracy\": %.4f%s}"
       quick g.TS.Gen.node_count
       counts.(k - 1)
       (p.users_per_edge * counts.(k - 1))
       issued events wall_s events_per_sec overall sharded_json);
  Format.printf "spliced bench_scale into BENCH_core.json@."
