(* Ablations over the design choices DESIGN.md calls out:
   - cache eviction policy (the paper fixes LRU; how sensitive is the
     Figure 5 result to that choice?);
   - the delay policy for hidden hits (constant gamma vs
     content-specific vs dynamic): latency experienced by consumers;
   - threshold-distribution shape beyond uniform/geometric. *)

let run ~scale ~jobs () =
  Format.printf "@.================ Ablations ================@.";

  (* --- countermeasure deployment (paper footnote 6) --- *)
  Format.printf
    "@.--- countermeasure placement: which routers should delay? ---@.";
  Format.printf
    "victim+adversary share edge1; honest remote consumer benefits from the core cache@.";
  (* Placements are measured concurrently (each is deterministic in its
     own seed) and printed in placement order. *)
  let placements = Array.of_list Attack.Deployment_experiment.all_placements in
  Sim.Parallel.map ~jobs (Array.length placements) (fun i ->
      Attack.Deployment_experiment.run placements.(i) ~trials:(15 * scale) ())
  |> Array.iter (fun r ->
         Format.printf "%a@." Attack.Deployment_experiment.pp_result r);
  Format.printf
    "(consumer-facing deployment defeats the local adversary without taxing@.";
  Format.printf
    " remote consumers; defending only the core is the worst of both worlds.@.";
  Format.printf
    " The residual ~55-60%% at defended edges is a second-order channel: the@.";
  Format.printf
    " replayed gamma_C is a constant, so hidden hits have less jitter than@.";
  Format.printf " genuine misses — see EXPERIMENTS.md.)@.";

  (* --- eviction policy --- *)
  Format.printf "@.--- eviction policy under the Figure 5 workload (No Privacy) ---@.";
  let trace =
    Workload.Ircache.generate
      { Workload.Ircache.default with Workload.Ircache.requests = 50_000 * scale }
  in
  Format.printf "%10s" "CacheSize";
  List.iter
    (fun p -> Format.printf " | %8s" (Ndn.Eviction.to_string p))
    Ndn.Eviction.all;
  Format.printf "@.";
  let capacities = [| 2000; 8000; 32000 |] in
  let evictions = Array.of_list Ndn.Eviction.all in
  let n_ev = Array.length evictions in
  (* The (capacity, eviction) grid replays concurrently; each cell is
     seeded by its config, and cells are printed in grid order. *)
  let grid =
    Sim.Parallel.map ~jobs
      (Array.length capacities * n_ev)
      (fun i ->
        let o =
          Workload.Replay.replay trace
            {
              Workload.Replay.default_config with
              Workload.Replay.cache_capacity = capacities.(i / n_ev);
              eviction = evictions.(i mod n_ev);
              policy = Core.Policy.No_privacy;
              private_mode = Workload.Replay.Per_content 0.;
            }
        in
        100. *. Workload.Replay.observable_hit_rate o)
  in
  Array.iteri
    (fun ci capacity ->
      Format.printf "%10s" (Workload.Metrics.cache_size_label capacity);
      Array.iteri
        (fun ei _ -> Format.printf " | %8.2f" grid.((ci * n_ev) + ei))
        evictions;
      Format.printf "@.")
    capacities;

  (* --- delay policies: consumer-visible latency --- *)
  Format.printf "@.--- artificial-delay policies: consumer latency on private content ---@.";
  Format.printf
    "%22s | %10s | %10s | %10s@." "policy" "1st (miss)" "2nd hit" "20th hit";
  let measure policy =
    let producer =
      { Ndn.Network.default_producer_config with producer_private = true }
    in
    let setup = Ndn.Network.lan ~producer () in
    ignore
      (Core.Private_router.attach setup.Ndn.Network.router ~rng:(Sim.Rng.create 3)
         (Core.Private_router.Delay_private policy));
    let n = Ndn.Name.of_string "/prod/private-file" in
    let fetch () =
      Option.value
        (Ndn.Network.fetch_rtt setup.Ndn.Network.net
           ~from:setup.Ndn.Network.adversary n)
        ~default:nan
    in
    let first = fetch () in
    let second = fetch () in
    let rest = List.init 18 (fun _ -> fetch ()) in
    let twentieth = List.nth rest 17 in
    (first, second, twentieth)
  in
  List.iter
    (fun (label, policy) ->
      let first, second, twentieth = measure policy in
      Format.printf "%22s | %10.2f | %10.2f | %10.2f@." label first second twentieth)
    [
      ("constant gamma=30ms", Core.Delay.Constant 30.);
      ("content-specific", Core.Delay.Content_specific);
      ( "dynamic (floor 2ms)",
        Core.Delay.Dynamic { floor = 2.; half_life_requests = 5. } );
    ];
  Format.printf
    "(dynamic decays toward the two-hop floor as popularity rises; constant@.";
  Format.printf " penalizes near content when gamma is set high)@.";

  (* --- workload model: i.i.d. Zipf vs temporal locality --- *)
  Format.printf
    "@.--- workload model: i.i.d. Zipf vs LRU-stack temporal locality ---@.";
  let n_req = 40_000 * scale in
  let iid =
    Workload.Ircache.generate
      { Workload.Ircache.default with Workload.Ircache.requests = n_req }
  in
  let local =
    Workload.Lru_stack.generate
      { Workload.Lru_stack.default with Workload.Lru_stack.requests = n_req }
  in
  let rate trace policy cap =
    100.
    *. Workload.Replay.observable_hit_rate
         (Workload.Replay.replay trace
            {
              Workload.Replay.default_config with
              Workload.Replay.cache_capacity = cap;
              policy;
              private_mode = Workload.Replay.Per_content 0.2;
            })
  in
  let expo =
    Core.Policy.Random_cache
      (Core.Kdist.Truncated_geometric { alpha = 0.999; domain = 200 })
  in
  Format.printf "%10s | %12s | %12s | %16s | %16s@." "CacheSize" "iid no-priv"
    "local no-priv" "iid expo-RC" "local expo-RC";
  let caps = [| 500; 2000; 8000 |] in
  let cells =
    [|
      (fun cap -> rate iid Core.Policy.No_privacy cap);
      (fun cap -> rate local Core.Policy.No_privacy cap);
      (fun cap -> rate iid expo cap);
      (fun cap -> rate local expo cap);
    |]
  in
  let table =
    Sim.Parallel.map ~jobs
      (Array.length caps * Array.length cells)
      (fun i -> cells.(i mod Array.length cells) caps.(i / Array.length cells))
  in
  Array.iteri
    (fun ci cap ->
      let cell j = table.((ci * Array.length cells) + j) in
      Format.printf "%10d | %12.2f | %12.2f | %16.2f | %16.2f@." cap (cell 0)
        (cell 1) (cell 2) (cell 3))
    caps;
  Format.printf
    "(temporal locality lifts small-cache hit rates dramatically — and raises@.";
  Format.printf
    " the absolute cost of Random-Cache: locally popular content spends more@.";
  Format.printf
    " of its requests inside the random threshold window.  The ordering of@.";
  Format.printf " the schemes is unchanged.)@.";

  (* --- threshold-distribution shapes --- *)
  Format.printf "@.--- threshold-distribution shape: privacy vs utility at K-budget 200 ---@.";
  Format.printf "%26s | %12s | %12s | %12s@." "distribution" "exact delta"
    "u(c=20)" "u(c=100)";
  let k = 5 in
  List.iter
    (fun (label, kdist) ->
      let k_dist = Core.Kdist.to_dist kdist in
      let delta = Privacy.Outputs.achieved_delta ~k_dist ~k ~probes:410 ~eps:0.3 in
      let u c =
        Privacy.Theorems.utility_of_misses ~c
          ~misses:(Privacy.Theorems.exact_expected_misses ~k_dist ~c)
      in
      Format.printf "%26s | %12.4f | %12.4f | %12.4f@." label delta (u 20) (u 100))
    [
      ("Uniform(0,200)", Core.Kdist.Uniform 200);
      ( "Geometric(0.999) trunc 200",
        Core.Kdist.Truncated_geometric { alpha = 0.999; domain = 200 } );
      ( "Geometric(0.97) trunc 200",
        Core.Kdist.Truncated_geometric { alpha = 0.97; domain = 200 } );
      ("Constant 100 (naive-like)", Core.Kdist.Constant 100);
      ( "Bimodal {0, 199}",
        Core.Kdist.Weighted [ (0, 0.5); (199, 0.5) ] );
    ];
  Format.printf
    "(exact delta at eps=0.3: sharper distributions buy utility with privacy;@.";
  Format.printf
    " the constant threshold is the fully-leaky naive scheme of Section VI)@."
