(* bench overload: graceful degradation under interest flooding.

   Reuses bench scale's generated ISP tree (item-1 scale: arity 10,
   5 tiers = 11,111 routers / 1M represented users; --quick: arity 14,
   3 tiers = 211 routers) and its tier-classification timing attack,
   then arms the robust forwarding plane and sweeps a seeded
   interest-flooding adversary (Workload.Flood) across

     flood intensity x PIT admission policy x link-queue depth.

   Per point, one simulation run with everything scheduled up front:

   - warm: one aggregate consumer per access router (Zipf + diurnal);
   - calibration (clean window, before the flood): per-tier RTT
     centroids measured from an adversary host exactly as bench scale
     does, plus an origin centroid;
   - flood: a host behind the adversary's access router floods
     [prefix/boom/...] — a subnamespace the producer host resolves to
     a handler that never answers, so each interest pins a PIT entry
     along the whole access-to-core path for the full lifetime (the
     unsatisfiable-flood attack);
   - probes: during the flood the adversary probes popular / mid-tail /
     fresh names; ground truth (deepest on-path cache holding the
     name) is read at probe time, the guess is the nearest pre-flood
     centroid, timeouts are classified "origin".  Cache hits at the
     access router survive a full PIT (CS is consulted before
     admission), but anything served deeper needs PIT state at every
     tier the flood is pinning — so attacker accuracy and the
     false-negative rate (cached-on-path probes classified origin)
     degrade as intensity crosses the PIT capacity knee;
   - honest cohort: consumer-private fetches with exponential backoff
     through the same access router, whose strategy runs the
     Random-Cache mimic countermeasure — yielding Random-Cache
     utility (private hits actually served) and the give-up rate
     (retry budgets exhausted);
   - goodput: delivered / issued over all aggregates (global) and
     over the attacked access router's aggregate (edge).

   Expected monotone responses as flood intensity rises, for every
   admission policy (documented here, recorded in BENCH_core.json):
   attacker accuracy and edge goodput fall; false-negative, give-up
   rates rise; Random-Cache utility falls.  Drop_new starves the
   attacked edge fastest (the full table rejects honest newcomers);
   Evict_oldest lets the flood churn every tier's PIT instead.

   Output: a point array spliced into BENCH_core.json under
   "overload".  All robust-plane features are opt-in switches flipped
   here; nothing in this bench changes defaults elsewhere. *)

let clock_ns () = Int64.to_float (Monotonic_clock.now ())

type params = {
  arity : int;
  ntiers : int;
  users_per_edge : int;
  req_per_user_per_hour : float;
  warm_ms : float;
  probes : int;
  util_requests : int;
  util_working_set : int;
  pit_capacity : int;
  queue_rate_mbps : float;
  spec : string;
}

let params ~quick =
  if quick then
    {
      arity = 14;
      ntiers = 3;
      users_per_edge = 100;
      req_per_user_per_hour = 600.;
      warm_ms = 8_000.;
      probes = 48;
      util_requests = 60;
      util_working_set = 8;
      pit_capacity = 512;
      queue_rate_mbps = 4.;
      spec =
        "generate tree name=overload arity=14 cs=4096,1024,256 \
         latency=const:8,const:2,const:1 payload=16 seed=7";
    }
  else
    {
      arity = 10;
      ntiers = 5;
      users_per_edge = 100;
      req_per_user_per_hour = 60.;
      warm_ms = 10_000.;
      probes = 120;
      util_requests = 120;
      util_working_set = 12;
      pit_capacity = 2048;
      queue_rate_mbps = 4.;
      spec =
        "generate tree name=overload arity=10 \
         cs=8192,4096,1024,512,256 \
         latency=const:8,const:4,const:2,const:1,const:0.5 payload=16 seed=7";
    }

(* Sweep grid: intensities x admission policies at the default queue
   depth, plus a small depth sweep at one congested point.  The two
   policies knee at different intensities: Drop_new starves honest
   newcomers as soon as the table pins full (rate ~ capacity /
   lifetime), while Evict_oldest keeps recycling the flood's own stale
   entries and only collapses once the eviction horizon (capacity /
   rate) drops below the data round-trip — hence the high top rate. *)
let flood_rates = [ 0.; 0.5; 4.; 32. ]
let admission_policies = [ Ndn.Pit.Drop_new; Ndn.Pit.Evict_oldest ]
let default_queue_depth = 32

(* Depth sweep under Evict_oldest: with Drop_new the edge PIT rejects
   the flood before it ever reaches the queued uplinks, so queue depth
   only binds when admission lets the flood traverse. *)
let depth_sweep = [ 8; 128 ]
let depth_sweep_rate = 8.
let depth_sweep_policy = Ndn.Pit.Evict_oldest

(* ------------------------------------------------------------------ *)
(* BENCH_core.json splicing: replace or add the "overload" member
   without disturbing whatever bench core / bench scale last wrote. *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let splice_bench_core entry =
  let path = "BENCH_core.json" in
  let marker = ",\n  \"overload\":" in
  let base =
    match open_in path with
    | exception Sys_error _ -> "{\n  \"suite\": \"bench-core\""
    | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match find_substring text marker with
      | Some i -> String.sub text 0 i
      | None -> (
        match String.rindex_opt text '}' with
        | Some i ->
          let prefix = String.sub text 0 i in
          let len = ref (String.length prefix) in
          while
            !len > 0
            && (prefix.[!len - 1] = '\n' || prefix.[!len - 1] = ' ')
          do
            decr len
          done;
          String.sub prefix 0 !len
        | None -> "{\n  \"suite\": \"bench-core\""))
  in
  let oc = open_out path in
  output_string oc (base ^ marker ^ " " ^ entry ^ "\n}\n");
  close_out oc

(* ------------------------------------------------------------------ *)

module TS = Ndn.Topology_spec

type point = {
  flood_per_ms : float;
  policy : Ndn.Pit.admission;
  queue_depth : int;
  accuracy : float;
  fnr : float;  (** -1 when no probe had cached-on-path truth. *)
  cached_truth : int;
  probes_run : int;
  rc_utility : float;
  give_up_rate : float;
  goodput : float;
  edge_goodput : float;
  flood_issued : int;
  flood_nacked : int;
  flood_timeouts : int;
  path_rejections : int;
  path_evictions : int;
  events : int;
  wall_s : float;
}

let run_point ~p ~spec ~decl ~g ~off ~counts ~flood_rate ~policy ~depth () =
  let k = p.ntiers in
  let topo =
    match TS.build ~seed:11 spec with
    | Ok t -> t
    | Error e -> failwith ("bench overload: build failed: " ^ e)
  in
  let net = topo.TS.network in
  let prefix = TS.Gen.prefix decl in
  let label i = TS.Gen.node_label decl g i in
  let node_of i =
    match Ndn.Network.node net (label i) with
    | Some n -> n
    | None -> assert false
  in
  (* --- robust plane: finite PITs + NACKs everywhere, queues on the
     adversary path --- *)
  List.iter
    (fun (_, n) -> Ndn.Node.set_nacks_enabled n true)
    (Ndn.Network.nodes net);
  for i = 0 to g.TS.Gen.node_count - 1 do
    Ndn.Node.set_pit_limits (node_of i) ~capacity:p.pit_capacity
      ~admission:policy ()
  done;
  let adv_leaf = off.(k - 1) + (counts.(k - 1) / 2) in
  let parent = TS.Gen.parents g in
  let path = Array.make k adv_leaf in
  for t = k - 2 downto 0 do
    path.(t) <- parent.(path.(t + 1))
  done;
  for t = 0 to k - 2 do
    match
      Ndn.Network.set_link_queue net ~a:(label path.(t))
        ~b:(label path.(t + 1))
        ~rate_mbps:p.queue_rate_mbps ~depth ()
    with
    | Ok () -> ()
    | Error e -> failwith ("bench overload: set_link_queue: " ^ e)
  done;
  (* The producer host resolves [prefix/boom/...] to a handler that
     never answers: longest-prefix match steers the flood there, so
     every flood interest pins PIT state along the whole path for the
     full lifetime. *)
  let producer =
    match Ndn.Network.node net (TS.Gen.producer_label decl) with
    | Some n -> n
    | None -> assert false
  in
  let boom = Ndn.Name.append prefix "boom" in
  Ndn.Node.add_producer producer ~prefix:boom (fun _ -> None);

  (* --- honest background: one aggregate per access router --- *)
  let config =
    {
      Workload.Aggregate.default with
      users = p.users_per_edge;
      req_per_user_per_hour = p.req_per_user_per_hour;
      catalog = 10_000;
      zipf_s = 0.85;
      diurnal_amplitude = 0.5;
      diurnal_period_ms = p.warm_ms;
      max_retries = 1;
    }
  in
  let master = Sim.Rng.create 2013 in
  let aggregates =
    List.map
      (fun i ->
        let rng = Sim.Rng.split master in
        ( i,
          Workload.Aggregate.attach config ~node:(node_of i) ~prefix ~rng
            ~until:p.warm_ms () ))
      g.TS.Gen.edge_routers
  in

  (* --- hosts behind the attacked access router --- *)
  let access = node_of adv_leaf in
  let host name =
    let h = Ndn.Network.add_node net ~cs_capacity:0 ~caching:false name in
    let face, _ =
      Ndn.Network.connect net ~latency:(Sim.Latency.Constant 0.25) h access
    in
    Ndn.Network.route net h ~prefix ~via:face;
    Ndn.Node.set_nacks_enabled h true;
    h
  in
  let adv = host "ov-adv" in
  let flooder = host "ov-flood" in
  let util = host "ov-util" in

  (* Random-Cache mimic on the attacked access router: the honest
     cohort below measures how much cache benefit private consumers
     retain under overload. *)
  let rc =
    Core.Private_router.attach access
      ~rng:(Sim.Rng.create 9091)
      (Core.Private_router.Random_cache_mimic
         {
           kdist = Core.Kdist.uniform_for ~k:10 ~delta:0.5;
           grouping = Core.Grouping.By_namespace 2;
         })
  in

  (* --- calibration (clean window): per-tier centroids, as in bench
     scale: plant cal-l from a helper access router whose path joins
     the adversary's exactly at tier l, then time the adversary's own
     fetch of it. *)
  let ia = adv_leaf - off.(k - 1) in
  let pow a b =
    let r = ref 1 in
    for _ = 1 to b do
      r := !r * a
    done;
    !r
  in
  let helper_leaf l =
    if l = k - 1 then adv_leaf
    else begin
      let j = ia / pow p.arity (k - 2 - l) in
      let j' = if j mod p.arity < p.arity - 1 then j + 1 else j - 1 in
      off.(k - 1) + (j' * pow p.arity (k - 2 - l))
    end
  in
  let centroids = Array.make k Float.infinity in
  let origin_centroid = ref Float.infinity in
  let t_plant = 0.28 *. p.warm_ms and t_cal = 0.34 *. p.warm_ms in
  for l = 0 to k - 1 do
    let cal = Ndn.Name.append prefix (Printf.sprintf "ov-cal-%d" l) in
    let helper = node_of (helper_leaf l) in
    Ndn.Node.schedule_app_at helper
      ~time:(t_plant +. (10. *. float_of_int l))
      (fun () ->
        Ndn.Node.express_interest helper
          ~on_data:(fun ~rtt_ms:_ _ -> ())
          cal);
    Ndn.Node.schedule_app_at adv
      ~time:(t_cal +. (10. *. float_of_int l))
      (fun () ->
        Ndn.Node.express_interest adv
          ~on_data:(fun ~rtt_ms _ -> centroids.(l) <- rtt_ms)
          cal)
  done;
  Ndn.Node.schedule_app_at adv ~time:(t_cal +. (10. *. float_of_int k))
    (fun () ->
      Ndn.Node.express_interest adv
        ~on_data:(fun ~rtt_ms _ -> origin_centroid := rtt_ms)
        (Ndn.Name.append prefix "ov-cal-origin"));

  (* --- flood --- *)
  let t_flood = 0.45 *. p.warm_ms in
  let flood =
    if flood_rate <= 0. then None
    else begin
      let f = ref None in
      Ndn.Node.schedule_app_at flooder ~time:t_flood (fun () ->
          f :=
            Some
              (Workload.Flood.attach
                 {
                   Workload.Flood.rate_per_ms = flood_rate;
                   scope = None;
                   timeout_ms = Some 2000.;
                 }
                 ~node:flooder ~prefix:boom
                 ~rng:(Sim.Rng.create 4099)
                 ~until:p.warm_ms ()));
      Some f
    end
  in

  (* --- probes during the flood --- *)
  let ground_truth name =
    let holds t =
      Ndn.Content_store.mem (Ndn.Node.content_store (node_of path.(t))) name
    in
    let rec deepest t =
      if t < 0 then -1 else if holds t then t else deepest (t - 1)
    in
    deepest (k - 1)
  in
  let probe_rng = Sim.Rng.create 4177 in
  let zipf = Workload.Zipf.create ~n:config.catalog ~s:config.zipf_s in
  let results = ref [] in
  let t_probe0 = 0.55 *. p.warm_ms in
  let probe_step = 0.40 *. p.warm_ms /. float_of_int p.probes in
  for i = 1 to p.probes do
    let name =
      match i mod 3 with
      | 0 -> Ndn.Name.append prefix (Printf.sprintf "ov-fresh-%d" i)
      | 1 -> Ndn.Name.append prefix (string_of_int ((i mod 8) + 1))
      | _ ->
        Ndn.Name.append prefix
          (string_of_int (Workload.Zipf.sample zipf probe_rng))
    in
    Ndn.Node.schedule_app_at adv
      ~time:(t_probe0 +. (probe_step *. float_of_int i))
      (fun () ->
        let truth = ground_truth name in
        Ndn.Node.express_interest adv ~timeout_ms:1500.
          ~on_data:(fun ~rtt_ms _ ->
            results := (truth, Some rtt_ms) :: !results)
          ~on_timeout:(fun () -> results := (truth, None) :: !results)
          name)
  done;

  (* --- honest consumer-private cohort with backoff --- *)
  let give_ups = ref 0 and completed = ref 0 in
  let backoff =
    Ndn.Consumer.backoff ~base_ms:20. ~factor:2. ~jitter:0.3
      (Sim.Rng.create 601)
  in
  let t_util0 = 0.50 *. p.warm_ms in
  let util_step = 0.48 *. p.warm_ms /. float_of_int p.util_requests in
  for i = 1 to p.util_requests do
    let name =
      Ndn.Name.append prefix
        (Printf.sprintf "ov-util-%d" (i mod p.util_working_set))
    in
    Ndn.Node.schedule_app_at util
      ~time:(t_util0 +. (util_step *. float_of_int i))
      (fun () ->
        Ndn.Consumer.fetch util ~max_retries:2 ~backoff
          ~consumer_private:true
          ~on_done:(fun o ->
            incr completed;
            if o.Ndn.Consumer.data = None then incr give_ups)
          name)
  done;

  (* --- run and harvest --- *)
  let t0 = clock_ns () in
  Ndn.Network.run net;
  let wall_s = (clock_ns () -. t0) /. 1e9 in
  let events = Ndn.Network.events_processed net in

  let classify = function
    | None -> -1 (* timeout: the attacker's only consistent guess *)
    | Some rtt ->
      let best = ref (-1)
      and best_d = ref (Float.abs (rtt -. !origin_centroid)) in
      Array.iteri
        (fun l c ->
          let d = Float.abs (rtt -. c) in
          if d < !best_d then begin
            best := l;
            best_d := d
          end)
        centroids;
      !best
  in
  let total = List.length !results in
  let correct =
    List.fold_left
      (fun acc (truth, rtt) -> if classify rtt = truth then acc + 1 else acc)
      0 !results
  in
  let cached_truth =
    List.fold_left
      (fun acc (truth, _) -> if truth >= 0 then acc + 1 else acc)
      0 !results
  in
  let false_negs =
    List.fold_left
      (fun acc (truth, rtt) ->
        if truth >= 0 && classify rtt = -1 then acc + 1 else acc)
      0 !results
  in
  let accuracy =
    if total = 0 then 0. else float_of_int correct /. float_of_int total
  in
  let fnr =
    if cached_truth = 0 then -1.
    else float_of_int false_negs /. float_of_int cached_truth
  in
  let issued, timeouts, edge_issued, edge_timeouts =
    List.fold_left
      (fun (i, t, ei, et) (r, a) ->
        let ai = Workload.Aggregate.requests_issued a
        and at = Workload.Aggregate.timeouts a in
        if r = adv_leaf then (i + ai, t + at, ei + ai, et + at)
        else (i + ai, t + at, ei, et))
      (0, 0, 0, 0) aggregates
  in
  let goodput_of issued timeouts =
    if issued = 0 then 1.
    else float_of_int (issued - timeouts) /. float_of_int issued
  in
  let st = Core.Private_router.stats rc in
  let util_total =
    st.Core.Private_router.private_hits_served
    + st.Core.Private_router.private_hits_hidden
  in
  let rc_utility =
    if util_total = 0 then 0.
    else
      float_of_int st.Core.Private_router.private_hits_served
      /. float_of_int util_total
  in
  let give_up_rate =
    if !completed = 0 then 0.
    else float_of_int !give_ups /. float_of_int !completed
  in
  let flood_issued, flood_nacked, flood_timeouts =
    match flood with
    | None -> (0, 0, 0)
    | Some f -> (
      match !f with
      | None -> (0, 0, 0)
      | Some fl ->
        ( Workload.Flood.interests_issued fl,
          Workload.Flood.nacks_received fl,
          Workload.Flood.timeouts fl ))
  in
  let path_rejections = ref 0 and path_evictions = ref 0 in
  Array.iter
    (fun i ->
      let pit = Ndn.Node.pit (node_of i) in
      path_rejections := !path_rejections + Ndn.Pit.rejections pit;
      path_evictions := !path_evictions + Ndn.Pit.evictions pit)
    path;
  {
    flood_per_ms = flood_rate;
    policy;
    queue_depth = depth;
    accuracy;
    fnr;
    cached_truth;
    probes_run = total;
    rc_utility;
    give_up_rate;
    goodput = goodput_of issued timeouts;
    edge_goodput = goodput_of edge_issued edge_timeouts;
    flood_issued;
    flood_nacked;
    flood_timeouts;
    path_rejections = !path_rejections;
    path_evictions = !path_evictions;
    events;
    wall_s;
  }

let point_json pt =
  Printf.sprintf
    "{\"flood_per_ms\": %.2f, \"policy\": \"%s\", \"queue_depth\": %d, \
     \"attacker_accuracy\": %.4f, \"false_negative_rate\": %.4f, \
     \"probes\": %d, \"cached_truth_probes\": %d, \"rc_utility\": %.4f, \
     \"give_up_rate\": %.4f, \"goodput\": %.4f, \"edge_goodput\": %.4f, \
     \"flood_issued\": %d, \"flood_nacked\": %d, \"flood_timeouts\": %d, \
     \"path_pit_rejections\": %d, \"path_pit_evictions\": %d, \
     \"events\": %d, \"wall_s\": %.3f}"
    pt.flood_per_ms
    (Ndn.Pit.admission_to_string pt.policy)
    pt.queue_depth pt.accuracy pt.fnr pt.probes_run pt.cached_truth
    pt.rc_utility pt.give_up_rate pt.goodput pt.edge_goodput pt.flood_issued
    pt.flood_nacked pt.flood_timeouts pt.path_rejections pt.path_evictions
    pt.events pt.wall_s

let run ~quick () =
  Format.printf
    "@.================ Overload: interest flooding vs. the robust plane \
     ================@.";
  let p = params ~quick in
  let spec =
    match TS.parse_spec p.spec with
    | Ok s -> s
    | Error e -> failwith ("bench overload: bad spec: " ^ e)
  in
  let decl =
    match
      List.find_map
        (function _, TS.Generate_decl d -> Some d | _ -> None)
        spec
    with
    | Some d -> d
    | None -> assert false
  in
  let g = TS.Gen.graph_of decl in
  let k = p.ntiers in
  let off = Array.make (k + 1) 0 in
  let counts = Array.make k 1 in
  for t = 1 to k - 1 do
    counts.(t) <- counts.(t - 1) * p.arity
  done;
  for t = 0 to k - 1 do
    off.(t + 1) <- off.(t) + counts.(t)
  done;
  Format.printf
    "graph: %d routers, %d access routers, %d represented users; pit cap \
     %d, queue %.1f Mbps@."
    g.TS.Gen.node_count
    counts.(k - 1)
    (p.users_per_edge * counts.(k - 1))
    p.pit_capacity p.queue_rate_mbps;
  Format.printf
    "  flood/ms  policy        depth  accuracy   fnr  rc-util  give-up  \
     edge-goodput@.";
  let run_one ~flood_rate ~policy ~depth =
    let pt = run_point ~p ~spec ~decl ~g ~off ~counts ~flood_rate ~policy ~depth () in
    Format.printf
      "  %8.2f  %-12s  %5d    %6.1f%%  %4.2f   %6.1f%%  %6.1f%%        \
       %6.1f%%  (%.1fs)@."
      pt.flood_per_ms
      (Ndn.Pit.admission_to_string pt.policy)
      pt.queue_depth (100. *. pt.accuracy) pt.fnr
      (100. *. pt.rc_utility)
      (100. *. pt.give_up_rate)
      (100. *. pt.edge_goodput)
      pt.wall_s;
    pt
  in
  let grid =
    List.concat_map
      (fun policy ->
        List.map
          (fun flood_rate ->
            run_one ~flood_rate ~policy ~depth:default_queue_depth)
          flood_rates)
      admission_policies
  in
  let depths =
    List.map
      (fun depth ->
        run_one ~flood_rate:depth_sweep_rate ~policy:depth_sweep_policy ~depth)
      depth_sweep
  in
  splice_bench_core
    (Printf.sprintf
       "{\"quick\": %b, \"routers\": %d, \"access_routers\": %d, \
        \"represented_users\": %d, \"pit_capacity\": %d, \
        \"queue_rate_mbps\": %.1f, \"default_queue_depth\": %d, \
        \"monotone\": {\"attacker_accuracy\": \"decreasing\", \
        \"false_negative_rate\": \"increasing\", \"rc_utility\": \
        \"decreasing\", \"edge_goodput\": \"decreasing\", \
        \"give_up_rate\": \"increasing\"}, \
        \"points\": [%s], \"depth_sweep\": [%s]}"
       quick g.TS.Gen.node_count
       counts.(k - 1)
       (p.users_per_edge * counts.(k - 1))
       p.pit_capacity p.queue_rate_mbps default_queue_depth
       (String.concat ", " (List.map point_json grid))
       (String.concat ", " (List.map point_json depths)));
  Format.printf "spliced overload into BENCH_core.json@."
