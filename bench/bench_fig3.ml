(* Figure 3: cache hit vs. cache miss RTT distributions and the
   adversary's distinguishing probability, in the paper's four
   measurement settings. *)

let section fmt = Format.printf fmt

let paper_reference = function
  | "LAN" -> "paper: support ~3.3-12.3 ms, distinguisher > 99.9%"
  | "WAN" -> "paper: support ~4.5-22.1 ms, distinguisher > 99%"
  | "WAN producer privacy" -> "paper: support ~180-220 ms, single-probe ~59%"
  | "Local host" -> "paper: support ~0.4-12.1 ms, near-perfect distinguisher"
  | _ -> ""

let run_one ~label ~make_setup ~contents ~runs ~jobs ~tracing =
  let result =
    Attack.Timing_experiment.run ~make_setup ~contents ~runs ~jobs
      ~trace:tracing ()
  in
  section "@.--- Figure 3: %s ---@." label;
  section "%s@." (paper_reference label);
  Attack.Timing_experiment.pp_result Format.std_formatter result;
  (result.Attack.Timing_experiment.success_rate,
   result.Attack.Timing_experiment.trace)

let run ~scale ~jobs ?trace () =
  let contents = 50 * scale and runs = 4 * scale in
  let tracing = trace <> None in
  section "@.================ Figure 3: timing attacks ================@.";
  let lan, lan_tr =
    run_one ~label:"LAN"
      ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
      ~contents ~runs ~jobs ~tracing
  in
  let wan, wan_tr =
    run_one ~label:"WAN"
      ~make_setup:(fun ~seed ~tracer -> Ndn.Network.wan ~seed ~tracer ())
      ~contents ~runs ~jobs ~tracing
  in
  let producer, producer_tr =
    run_one ~label:"WAN producer privacy"
      ~make_setup:(fun ~seed ~tracer ->
        Ndn.Network.wan_producer ~seed ~tracer ())
      ~contents ~runs ~jobs ~tracing
  in
  let local, local_tr =
    run_one ~label:"Local host"
      ~make_setup:(fun ~seed ~tracer -> Ndn.Network.local_host ~seed ~tracer ())
      ~contents ~runs ~jobs ~tracing
  in
  section "@.Figure 3 summary (distinguisher success, paper -> measured):@.";
  section "  (a) LAN:              >99.9%%  ->  %5.2f%%@." (100. *. lan);
  section "  (b) WAN:              >99%%    ->  %5.2f%%@." (100. *. wan);
  section "  (c) producer privacy:  59%%    ->  %5.2f%%@." (100. *. producer);
  section "  (d) local host:       ~100%%   ->  %5.2f%%@." (100. *. local);
  match trace with
  | None -> ()
  | Some (file, fmt) ->
    (* All four campaigns in a fixed order, each already merged in run
       order — the file is identical for any --jobs. *)
    let merged = Sim.Trace.create () in
    List.iter
      (fun tr -> Sim.Trace.merge_into ~into:merged tr)
      [ lan_tr; wan_tr; producer_tr; local_tr ];
    let oc = open_out_bin file in
    Sim.Trace.write fmt oc merged;
    close_out oc;
    section "trace: %d events -> %s (%s)@." (Sim.Trace.length merged) file
      (Sim.Trace.format_to_string fmt)
