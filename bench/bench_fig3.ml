(* Figure 3: cache hit vs. cache miss RTT distributions and the
   adversary's distinguishing probability, in the paper's four
   measurement settings. *)

let section fmt = Format.printf fmt

let paper_reference = function
  | "LAN" -> "paper: support ~3.3-12.3 ms, distinguisher > 99.9%"
  | "WAN" -> "paper: support ~4.5-22.1 ms, distinguisher > 99%"
  | "WAN producer privacy" -> "paper: support ~180-220 ms, single-probe ~59%"
  | "Local host" -> "paper: support ~0.4-12.1 ms, near-perfect distinguisher"
  | _ -> ""

let run_one ~label ~make_setup ~contents ~runs ~jobs =
  let result = Attack.Timing_experiment.run ~make_setup ~contents ~runs ~jobs () in
  section "@.--- Figure 3: %s ---@." label;
  section "%s@." (paper_reference label);
  Attack.Timing_experiment.pp_result Format.std_formatter result;
  result.Attack.Timing_experiment.success_rate

let run ~scale ~jobs () =
  let contents = 50 * scale and runs = 4 * scale in
  section "@.================ Figure 3: timing attacks ================@.";
  let lan =
    run_one ~label:"LAN"
      ~make_setup:(fun ~seed -> Ndn.Network.lan ~seed ())
      ~contents ~runs ~jobs
  in
  let wan =
    run_one ~label:"WAN"
      ~make_setup:(fun ~seed -> Ndn.Network.wan ~seed ())
      ~contents ~runs ~jobs
  in
  let producer =
    run_one ~label:"WAN producer privacy"
      ~make_setup:(fun ~seed -> Ndn.Network.wan_producer ~seed ())
      ~contents ~runs ~jobs
  in
  let local =
    run_one ~label:"Local host"
      ~make_setup:(fun ~seed -> Ndn.Network.local_host ~seed ())
      ~contents ~runs ~jobs
  in
  section "@.Figure 3 summary (distinguisher success, paper -> measured):@.";
  section "  (a) LAN:              >99.9%%  ->  %5.2f%%@." (100. *. lan);
  section "  (b) WAN:              >99%%    ->  %5.2f%%@." (100. *. wan);
  section "  (c) producer privacy:  59%%    ->  %5.2f%%@." (100. *. producer);
  section "  (d) local host:       ~100%%   ->  %5.2f%%@." (100. *. local)
