(* Bechamel micro-benchmarks of the hot paths: name handling, trie
   lookup, content-store operations, PIT, Algorithm 1, HMAC, and
   whole-trace replay throughput. *)

open Bechamel
open Toolkit

let names =
  Array.init 1024 (fun i ->
      Ndn.Name.of_string (Printf.sprintf "/bench/ns%d/content/%d" (i mod 16) i))

let test_name_parse =
  Test.make ~name:"name/of_string"
    (Staged.stage (fun () -> Ndn.Name.of_string "/cnn/news/2013may20/segment/137"))

let test_name_prefix =
  let prefix = Ndn.Name.of_string "/bench/ns3" in
  Test.make ~name:"name/is_prefix"
    (Staged.stage (fun () -> Ndn.Name.is_prefix ~prefix names.(771)))

let test_trie_longest_prefix =
  let trie = Ndn.Name_trie.create () in
  Array.iteri (fun i n -> Ndn.Name_trie.add trie (Ndn.Name.prefix n 2) i) names;
  Test.make ~name:"trie/longest_prefix"
    (Staged.stage (fun () -> Ndn.Name_trie.longest_prefix trie names.(99)))

let test_cs_ops =
  let cs = Ndn.Content_store.create ~capacity:512 () in
  let data =
    Array.map
      (fun n -> Ndn.Data.create ~producer:"bench" ~key:"k" ~payload:"x" n)
      names
  in
  let i = ref 0 in
  Test.make ~name:"content_store/insert+lookup(lru)"
    (Staged.stage (fun () ->
         let j = !i land 1023 in
         incr i;
         Ndn.Content_store.insert cs ~now:(float_of_int !i) data.(j) ();
         ignore
           (Ndn.Content_store.lookup cs ~now:(float_of_int !i) ~exact:true
              names.((j + 512) land 1023))))

(* Trace overhead: the same CS workload as content_store/insert+lookup,
   with a disabled tracer (the default — measures the guard cost, which
   must stay within noise of the baseline above), a buffering tracer,
   and a null-sink streaming tracer. *)
let cs_workload cs data =
  let i = ref 0 in
  fun () ->
    let j = !i land 1023 in
    incr i;
    Ndn.Content_store.insert cs ~now:(float_of_int !i) data.(j) ();
    ignore
      (Ndn.Content_store.lookup cs ~now:(float_of_int !i) ~exact:true
         names.((j + 512) land 1023))

let bench_data =
  lazy
    (Array.map
       (fun n -> Ndn.Data.create ~producer:"bench" ~key:"k" ~payload:"x" n)
       names)

let test_cs_trace_disabled =
  let cs = Ndn.Content_store.create ~tracer:Sim.Trace.disabled ~capacity:512 () in
  Test.make ~name:"trace/cs-ops-disabled"
    (Staged.stage (cs_workload cs (Lazy.force bench_data)))

let test_cs_trace_buffered =
  let tracer = Sim.Trace.create () in
  let cs = Ndn.Content_store.create ~tracer ~capacity:512 () in
  let work = cs_workload cs (Lazy.force bench_data) in
  let i = ref 0 in
  Test.make ~name:"trace/cs-ops-buffered"
    (Staged.stage (fun () ->
         (* Bound the buffer so the benchmark measures emission, not
            unbounded growth. *)
         incr i;
         if !i land 0xffff = 0 then Sim.Trace.clear tracer;
         work ()))

let test_cs_trace_null_sink =
  let tracer = Sim.Trace.with_sink ignore in
  let cs = Ndn.Content_store.create ~tracer ~capacity:512 () in
  Test.make ~name:"trace/cs-ops-null-sink"
    (Staged.stage (cs_workload cs (Lazy.force bench_data)))

let test_trace_emit =
  let tracer = Sim.Trace.with_sink ignore in
  Test.make ~name:"trace/emit"
    (Staged.stage (fun () ->
         Sim.Trace.emit tracer
           {
             Sim.Trace.time = 1.25;
             node = "R";
             kind = Sim.Trace.Cs_hit;
             name = "/bench/ns0/content/0";
             attrs = [ ("policy", "lru") ];
           }))

let test_trace_jsonl =
  let event =
    {
      Sim.Trace.time = 1.25;
      node = "R";
      kind = Sim.Trace.Cs_hit;
      name = "/bench/ns0/content/0";
      attrs = [ ("policy", "lru"); ("count", "3") ];
    }
  in
  Test.make ~name:"trace/event_to_jsonl"
    (Staged.stage (fun () -> Sim.Trace.event_to_jsonl event))

(* Fault-hook overhead: the link delivery path now consults per-direction
   mutable fault state (up, loss override, latency factor) on every
   packet.  These two cases run the identical two-node fetch workload
   with and without a fault schedule installed — they must stay within
   noise of each other (the hooks are branch-and-multiply, no
   allocation). *)
let fault_fetch_workload ~faulted =
  let net = Ndn.Network.create ~seed:11 () in
  let c = Ndn.Network.add_node net ~caching:false "C" in
  let p = Ndn.Network.add_node net "P" in
  let prefix = Ndn.Name.of_string "/m" in
  let cf, _ = Ndn.Network.connect net ~latency:(Sim.Latency.Constant 1.) c p in
  Ndn.Network.route net c ~prefix ~via:cf;
  Ndn.Node.add_producer p ~prefix (fun i ->
      Some
        (Ndn.Data.create ~producer:"P" ~key:"k" ~payload:"x"
           i.Ndn.Interest.name));
  if faulted then begin
    (* A degrade window that opens and closes during the first fetch:
       afterwards every iteration runs with the fault machinery armed
       but the link at its base parameters. *)
    let schedule =
      [
        {
          Sim.Fault.at = 0.;
          kind =
            Sim.Fault.Link_degrade
              {
                a = "C";
                b = "P";
                dir = Sim.Fault.Both;
                loss = 0.;
                latency_factor = 1.;
                until = 0.5;
              };
        };
      ]
    in
    match Ndn.Network.install_faults net schedule with
    | Ok () -> ()
    | Error msg -> failwith msg
  end;
  let name = Ndn.Name.of_string "/m/bench" in
  fun () -> ignore (Ndn.Network.fetch_rtt net ~from:c name)

let test_fault_fetch_baseline =
  Test.make ~name:"fault/fetch-no-schedule"
    (Staged.stage (fault_fetch_workload ~faulted:false))

let test_fault_fetch_idle =
  Test.make ~name:"fault/fetch-idle-schedule"
    (Staged.stage (fault_fetch_workload ~faulted:true))

let test_pit =
  let pit = Ndn.Pit.create () in
  let i = ref 0 in
  Test.make ~name:"pit/insert+satisfy"
    (Staged.stage (fun () ->
         let j = !i land 1023 in
         incr i;
         ignore (Ndn.Pit.insert pit ~now:0. ~face:1 ~nonce:(Int64.of_int !i) names.(j));
         ignore (Ndn.Pit.satisfy pit names.(j))))

let test_random_cache =
  let rng = Sim.Rng.create 1 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Uniform 200) ~rng () in
  let i = ref 0 in
  Test.make ~name:"random_cache/on_request"
    (Staged.stage (fun () ->
         incr i;
         Core.Random_cache.on_request rc names.(!i land 1023)))

let test_hmac =
  Test.make ~name:"crypto/hmac-sha256-64B"
    (Staged.stage
       (let msg = String.make 64 'm' in
        fun () -> Ndn_crypto.Hmac.mac ~key:"benchmark-key" msg))

let test_sha_1k =
  Test.make ~name:"crypto/sha256-1KiB"
    (Staged.stage
       (let msg = String.make 1024 's' in
        fun () -> Ndn_crypto.Sha256.digest msg))

let test_rng =
  let rng = Sim.Rng.create 2 in
  Test.make ~name:"rng/gaussian" (Staged.stage (fun () -> Sim.Rng.gaussian rng ~mean:0. ~stddev:1.))

let test_engine =
  Test.make ~name:"engine/schedule+run-64"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 64 do
           ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> ()))
         done;
         Sim.Engine.run e))

let test_replay_1k =
  let trace =
    Workload.Ircache.generate
      { Workload.Ircache.default with Workload.Ircache.requests = 1_000; seed = 5 }
  in
  Test.make ~name:"replay/1k-requests-lru-expo"
    (Staged.stage (fun () ->
         Workload.Replay.replay trace
           {
             Workload.Replay.default_config with
             Workload.Replay.cache_capacity = 200;
             policy =
               Core.Policy.Random_cache
                 (Core.Kdist.Truncated_geometric { alpha = 0.999; domain = 200 });
             private_mode = Workload.Replay.Per_content 0.2;
           }))

let tests =
  Test.make_grouped ~name:"ndn-cache-privacy" ~fmt:"%s %s"
    [
      test_name_parse;
      test_name_prefix;
      test_trie_longest_prefix;
      test_cs_ops;
      test_cs_trace_disabled;
      test_cs_trace_buffered;
      test_cs_trace_null_sink;
      test_trace_emit;
      test_trace_jsonl;
      test_fault_fetch_baseline;
      test_fault_fetch_idle;
      test_pit;
      test_random_cache;
      test_hmac;
      test_sha_1k;
      test_rng;
      test_engine;
      test_replay_1k;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ minor_allocated; monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let run () =
  Format.printf "@.================ Micro-benchmarks (Bechamel) ================@.";
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let results = benchmark () in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image Notty.I.(img <-> void 0 1)
