(* bench core: the machine-readable perf-regression harness.

   Measures the hot paths that the zero-allocation work targets —
   engine event churn, content-store exact-hit and insert/evict mixes
   per eviction policy, and one end-to-end Figure 3 LAN campaign — and
   writes BENCH_core.json for CI and for before/after comparisons.

   Two hard checks run here rather than in a test:
   - the CS exact-hit path with tracing disabled must stay within
     [cs_hit_alloc_ceiling] minor words per lookup (the zero-allocation
     contract); exceeding it makes the process exit non-zero, which
     fails the CI bench-smoke job;
   - the engine-churn timing is measured twice, once against a verbatim
     copy of the pre-rewrite boxed heap + handle-per-schedule engine
     (module [Baseline] below), so the JSON carries an honest
     before/after pair from the same binary, same workload, same
     machine. *)

let clock_ns () = Int64.to_float (Monotonic_clock.now ())

(* Minor words per exact-hit lookup the CS is allowed to cost with
   tracing disabled.  The true value is 0.0; the epsilon absorbs the
   harness's own bracketing (two boxed clock reads per measured run).
   Checked in deliberately — raising it is a reviewed decision, not a
   drift. *)
let cs_hit_alloc_ceiling = 0.01

(* ------------------------------------------------------------------ *)
(* Baseline: the pre-rewrite event queue, kept verbatim (boxed
   (time, seq, payload) entries, a fresh handle record per schedule, an
   option-tuple pop) so the speedup claim in BENCH_core.json is
   measured, not remembered. *)

module Baseline = struct
  module Old_heap = struct
    type 'a entry = { time : float; seq : int; payload : 'a }
    type 'a t = { mutable data : 'a entry array; mutable size : int }

    let create () = { data = [||]; size = 0 }

    let key_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

    let grow t entry =
      let cap = Array.length t.data in
      if t.size = cap then begin
        let ncap = max 16 (2 * cap) in
        let ndata = Array.make ncap entry in
        Array.blit t.data 0 ndata 0 t.size;
        t.data <- ndata
      end

    let rec sift_up t i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if key_lt t.data.(i) t.data.(parent) then begin
          let tmp = t.data.(i) in
          t.data.(i) <- t.data.(parent);
          t.data.(parent) <- tmp;
          sift_up t parent
        end
      end

    let rec sift_down t i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < t.size && key_lt t.data.(l) t.data.(!smallest) then smallest := l;
      if r < t.size && key_lt t.data.(r) t.data.(!smallest) then smallest := r;
      if !smallest <> i then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(!smallest);
        t.data.(!smallest) <- tmp;
        sift_down t !smallest
      end

    let add t ~time ~seq payload =
      let entry = { time; seq; payload } in
      grow t entry;
      t.data.(t.size) <- entry;
      t.size <- t.size + 1;
      sift_up t (t.size - 1)

    let peek_min t =
      if t.size = 0 then None
      else
        let e = t.data.(0) in
        Some (e.time, e.seq, e.payload)

    let pop_min t =
      if t.size = 0 then None
      else begin
        let e = t.data.(0) in
        t.size <- t.size - 1;
        if t.size > 0 then begin
          t.data.(0) <- t.data.(t.size);
          sift_down t 0
        end;
        Some (e.time, e.seq, e.payload)
      end
  end

  type state = Pending | Fired | Cancelled

  type handle = { mutable state : state; action : unit -> unit }

  type t = {
    queue : handle Old_heap.t;
    mutable clock : float;
    mutable next_seq : int;
    mutable processed : int;
    mutable cancelled_queued : int;
    tracer : Sim.Trace.t;
  }

  let create () =
    {
      queue = Old_heap.create ();
      clock = 0.;
      next_seq = 0;
      processed = 0;
      cancelled_queued = 0;
      tracer = Sim.Trace.disabled;
    }

  let schedule t ~delay f =
    let delay = if delay < 0. then 0. else delay in
    let h = { state = Pending; action = f } in
    Old_heap.add t.queue ~time:(t.clock +. delay) ~seq:t.next_seq h;
    t.next_seq <- t.next_seq + 1;
    h

  let cancel t h =
    if h.state = Pending then begin
      h.state <- Cancelled;
      t.cancelled_queued <- t.cancelled_queued + 1
    end

  let step t =
    match Old_heap.pop_min t.queue with
    | None -> false
    | Some (time, _seq, h) ->
      t.clock <- time;
      (match h.state with
      | Cancelled -> t.cancelled_queued <- t.cancelled_queued - 1
      | Fired -> ()
      | Pending ->
        h.state <- Fired;
        t.processed <- t.processed + 1;
        if Sim.Trace.enabled t.tracer then
          Sim.Trace.emit t.tracer
            {
              Sim.Trace.time;
              node = "engine";
              kind = Sim.Trace.Engine_step;
              name = "";
              attrs = [];
            };
        h.action ());
      true

  (* The pre-rewrite [Engine.run] inner step: peek to test the [until]
     bound, then pop — the double traversal (and double option-tuple
     allocation) per event that [pop_if_min_before]/[min_time] replaced. *)
  let run_one t ~until =
    match Old_heap.peek_min t.queue with
    | None -> false
    | Some (time, _, _) ->
      if time > until then false
      else begin
        ignore (step t);
        true
      end
end

(* ------------------------------------------------------------------ *)
(* Engine churn: steady-state schedule/cancel/fire traffic over a
   ~[depth]-deep queue — the inner loop of every simulated experiment.
   One op = one schedule (every 4th immediately cancelled, exercising
   the lazy cancelled-pop drain) + one step.  The same workload, same
   pseudo-delays, runs against the baseline engine above.  Depth 4096
   matches the pending-event population of the trace-driven fig5
   campaigns (one in-flight timer per client plus per-hop forwarding
   events); the boxed baseline degrades faster with depth because every
   sift level chases an entry pointer where the SoA heap reads a flat
   float array. *)

let churn_depth = 4096

(* Pseudo-random-looking delays, precomputed: [(i * 7919) land 1023] has
   period 1024 in [i], so a 1024-entry table covers every op.  Both
   sides of the before/after pair read the same table — the per-op
   workload cost outside the engine is one unboxed array load, so it
   dilutes the measured ratio as little as possible. *)
let churn_delays =
  Array.init 1024 (fun i -> float_of_int (((i * 7919) land 1023) + 1))

let churn_delay i = Array.unsafe_get churn_delays (i land 1023)

let nop () = ()

let churn_new ops =
  let e = Sim.Engine.create () in
  for i = 1 to churn_depth do
    ignore (Sim.Engine.schedule e ~delay:(churn_delay i) nop)
  done;
  for i = 1 to ops do
    let h = Sim.Engine.schedule e ~delay:(churn_delay i) nop in
    if i land 3 = 0 then Sim.Engine.cancel h;
    ignore (Sim.Engine.step e)
  done

let churn_baseline ops =
  let e = Baseline.create () in
  for i = 1 to churn_depth do
    ignore (Baseline.schedule e ~delay:(churn_delay i) nop)
  done;
  for i = 1 to ops do
    let h = Baseline.schedule e ~delay:(churn_delay i) nop in
    if i land 3 = 0 then Baseline.cancel e h;
    ignore (Baseline.run_one e ~until:infinity)
  done

(* ------------------------------------------------------------------ *)
(* Content-store workloads. *)

let cs_names =
  lazy
    (Array.init 1024 (fun i ->
         Ndn.Name.of_string (Printf.sprintf "/bench/ns%d/content/%d" (i mod 16) i)))

let cs_data =
  lazy
    (Array.map
       (fun n -> Ndn.Data.create ~producer:"bench" ~key:"k" ~payload:"x" n)
       (Lazy.force cs_names))

(* Exact-hit: every lookup hits a resident, never-stale entry with
   tracing disabled — the zero-allocation contract.  [now] is hoisted so
   the loop passes one boxed float instead of boxing a fresh one per
   call. *)
let cs_hit_workload () =
  let names = Lazy.force cs_names in
  let data = Lazy.force cs_data in
  let cs = Ndn.Content_store.create ~capacity:512 () in
  for i = 0 to 511 do
    Ndn.Content_store.insert cs ~now:0. data.(i) ()
  done;
  let now = 1.0 in
  fun ops ->
    for i = 1 to ops do
      ignore (Ndn.Content_store.find_exact cs ~now names.(i land 511))
    done

(* Insert/evict mix: inserting from a 1024-name universe into a
   256-entry store, so ~every insert evicts — the policy's bookkeeping
   (intrusive list, lazy LFU heap, RR slot array) dominates. *)
let cs_insert_workload policy () =
  let data = Lazy.force cs_data in
  let rng = Sim.Rng.create 42 in
  let cs = Ndn.Content_store.create ~policy ~rng ~capacity:256 () in
  let tick = ref 0 in
  fun ops ->
    for i = 1 to ops do
      incr tick;
      Ndn.Content_store.insert cs
        ~now:(float_of_int !tick)
        data.((i * 31) land 1023)
        ()
    done

(* ------------------------------------------------------------------ *)
(* PIT expiry sweep: steady state over a 4096-entry sliding window —
   one insert + one [expire] call per op, lifetime 4096 ticks, so each
   expire drops exactly the one entry crossing the horizon.  Guards
   the FIFO expiry index: cost must stay O(expired), not a scan of the
   live table (a rescan would pay ~window entries per op here).  The
   8192-name universe keeps reinserted names distinct from their
   long-expired predecessors. *)

let pit_names =
  lazy
    (Array.init 8192 (fun i ->
         Ndn.Name.of_string (Printf.sprintf "/bench/pit%d/entry/%d" (i mod 16) i)))

let pit_expire_workload () =
  let names = Lazy.force pit_names in
  let pit = Ndn.Pit.create ~lifetime_ms:4096. () in
  let tick = ref 0 in
  for _ = 1 to 4096 do
    incr tick;
    ignore
      (Ndn.Pit.insert pit ~now:(float_of_int !tick) ~face:1
         ~nonce:(Int64.of_int !tick)
         names.(!tick land 8191))
  done;
  fun ops ->
    for _ = 1 to ops do
      incr tick;
      ignore
        (Ndn.Pit.insert pit ~now:(float_of_int !tick) ~face:1
           ~nonce:(Int64.of_int !tick)
           names.(!tick land 8191));
      ignore (Ndn.Pit.expire pit ~now:(float_of_int !tick))
    done

(* ------------------------------------------------------------------ *)
(* End-to-end: one Figure 3 LAN campaign — every subsystem the rest of
   this file measures in isolation, composed. *)

let fig3_lan_workload ~quick () =
  let contents = if quick then 8 else 25 in
  let runs = if quick then 2 else 4 in
  fun ops ->
    for i = 1 to ops do
      ignore
        (Attack.Timing_experiment.run
           ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
           ~contents ~runs ~seed:(10 + i) ~jobs:1 ())
    done

(* ------------------------------------------------------------------ *)
(* Trace throughput: the binary wire format's reason to exist.  One
   traced fig3 LAN campaign supplies a realistic event mix; the
   workloads then re-emit those events through each exporter and
   re-analyze the binary stream, so the JSON carries events/s and
   bytes/event for both formats from the same trace on the same
   machine.  The binary emit path has its own alloc ceiling: the
   steady-state cost is re-interning the campaign's ~100 distinct
   strings once per pass, a fraction of a word per event — anything
   near one word/event means a closure or box crept into the hot
   path. *)

let binary_emit_alloc_ceiling = 0.5

let trace_campaign ~quick () =
  let contents = if quick then 8 else 25 in
  let runs = if quick then 2 else 4 in
  (Attack.Timing_experiment.run
     ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
     ~contents ~runs ~seed:11 ~jobs:1 ~trace:true ())
    .Attack.Timing_experiment.trace

(* One op = one event re-rendered into a reused buffer (JSONL) or a
   reset encoder (binary) — the per-event cost a [--trace] run pays at
   export time, minus the write(2)s. *)
let jsonl_emit_workload events =
  let buf = Buffer.create 65536 in
  let n = Array.length events in
  fun ops ->
    for _ = 1 to ops / n do
      Buffer.clear buf;
      for i = 0 to n - 1 do
        Buffer.add_string buf (Sim.Trace.event_to_jsonl (Array.unsafe_get events i));
        Buffer.add_char buf '\n'
      done
    done

let binary_emit_workload events =
  let enc = Sim.Trace.encoder_create () in
  let n = Array.length events in
  fun ops ->
    for _ = 1 to ops / n do
      Sim.Trace.encoder_reset enc;
      Sim.Trace.encoder_add_header enc;
      for i = 0 to n - 1 do
        Sim.Trace.encode_event enc (Array.unsafe_get events i)
      done
    done

(* One op = one event decoded and folded through the full [Analyze]
   accumulator — the streaming-analyzer consumption rate. *)
let analyze_workload ~n bin =
  fun ops ->
    for _ = 1 to ops / n do
      match Sim.Analyze.of_source (Sim.Trace_reader.of_string bin) with
      | Ok _ -> ()
      | Error e -> failwith (Sim.Trace_reader.error_to_string e)
    done

(* ------------------------------------------------------------------ *)
(* JSON assembly. *)

let read_git_rev () =
  let read_line path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      close_in ic;
      line
  in
  match read_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
    if String.length head > 5 && String.sub head 0 5 = "ref: " then
      let ref_path = ".git/" ^ String.sub head 5 (String.length head - 5) in
      Option.value (read_line ref_path) ~default:"unknown"
    else head

let run ~quick () =
  Format.printf "@.================ Core perf-regression suite ================@.";
  let ops_scale = if quick then 1 else 8 in
  let runs = if quick then 3 else 5 in
  let m ?(ops = 100_000 * ops_scale) ~label f =
    let r = Sim.Bench.measure ~clock_ns ~runs ~label ~ops f in
    Format.printf "%a@." Sim.Bench.pp_result r;
    r
  in
  (* The before/after churn pair is measured interleaved — one run of
     each, alternating, minimum per side — so slow drift in machine
     speed (frequency scaling, co-tenancy) cannot bias the ratio the
     way two back-to-back blocks would. *)
  let measure_pair ~label_a fa ~label_b fb ~ops ~rounds =
    let one label f =
      Sim.Bench.measure ~clock_ns ~warmup:0 ~runs:1 ~label ~ops f
    in
    ignore (fa ops);
    ignore (fb ops);
    let best = ref None in
    for _ = 1 to rounds do
      let ra = one label_a fa in
      let rb = one label_b fb in
      best :=
        Some
          (match !best with
          | None -> (ra, rb)
          | Some (ba, bb) ->
            let keep b r =
              {
                r with
                Sim.Bench.ns_per_op = Float.min b.Sim.Bench.ns_per_op r.Sim.Bench.ns_per_op;
                allocs_per_op = Float.min b.Sim.Bench.allocs_per_op r.Sim.Bench.allocs_per_op;
                runs = rounds;
              }
            in
            (keep ba ra, keep bb rb))
    done;
    Option.get !best
  in
  let churn_old, churn =
    let old_r, new_r =
      measure_pair ~label_a:"engine-churn/boxed-baseline" churn_baseline
        ~label_b:"engine-churn" churn_new ~ops:(100_000 * ops_scale)
        ~rounds:(2 * runs)
    in
    Format.printf "%a@." Sim.Bench.pp_result old_r;
    Format.printf "%a@." Sim.Bench.pp_result new_r;
    (old_r, new_r)
  in
  let cs_hit = m ~label:"cs-hit/exact-untraced" (cs_hit_workload ()) in
  let pit_expire = m ~label:"pit-expire/steady-window" (pit_expire_workload ()) in
  let cs_inserts =
    List.map
      (fun policy ->
        m
          ~label:("cs-insert-evict/" ^ Ndn.Eviction.to_string policy)
          (cs_insert_workload policy ()))
      [
        Ndn.Eviction.Lru;
        Ndn.Eviction.Fifo;
        Ndn.Eviction.Lfu;
        Ndn.Eviction.Random_replacement;
      ]
  in
  let fig3 =
    let r =
      Sim.Bench.measure ~clock_ns ~warmup:1 ~runs:(if quick then 2 else 3)
        ~label:"fig3-lan-trial" ~ops:1
        (fig3_lan_workload ~quick ())
    in
    Format.printf "%a@." Sim.Bench.pp_result r;
    r
  in
  let speedup = churn_old.Sim.Bench.ns_per_op /. churn.Sim.Bench.ns_per_op in
  Format.printf "engine churn speedup vs boxed baseline: %.2fx@." speedup;
  (* Trace throughput: emit both formats interleaved (same drift
     immunity as the churn pair), then the streaming analyzer over the
     binary stream. *)
  let trace_events = Sim.Trace.events (trace_campaign ~quick ()) in
  let trace_n = Array.length trace_events in
  let trace_jsonl_bytes, trace_binary_bytes =
    let tr = Sim.Trace.create () in
    Array.iter (Sim.Trace.emit tr) trace_events;
    ( String.length (Sim.Trace.render Sim.Trace.Jsonl tr),
      String.length (Sim.Trace.render Sim.Trace.Binary tr) )
  in
  let trace_ops =
    let passes = max 1 (((20_000 * ops_scale) + trace_n - 1) / trace_n) in
    passes * trace_n
  in
  let trace_jsonl_emit, trace_binary_emit =
    let ja, jb =
      measure_pair ~label_a:"trace-emit/jsonl"
        (jsonl_emit_workload trace_events)
        ~label_b:"trace-emit/binary"
        (binary_emit_workload trace_events)
        ~ops:trace_ops ~rounds:(2 * runs)
    in
    Format.printf "%a@." Sim.Bench.pp_result ja;
    Format.printf "%a@." Sim.Bench.pp_result jb;
    (ja, jb)
  in
  let trace_analyze =
    let tr = Sim.Trace.create () in
    Array.iter (Sim.Trace.emit tr) trace_events;
    let bin = Sim.Trace.render Sim.Trace.Binary tr in
    m ~ops:trace_ops ~label:"trace-analyze/binary-stream"
      (analyze_workload ~n:trace_n bin)
  in
  let emit_speedup =
    trace_jsonl_emit.Sim.Bench.ns_per_op /. trace_binary_emit.Sim.Bench.ns_per_op
  in
  let bytes_ratio =
    float_of_int trace_binary_bytes /. float_of_int trace_jsonl_bytes
  in
  Format.printf
    "trace emit: binary %.2fx faster than jsonl, %.3fx the bytes (%d events)@."
    emit_speedup bytes_ratio trace_n;
  let results =
    (churn :: cs_hit :: pit_expire :: cs_inserts)
    @ [ fig3; trace_jsonl_emit; trace_binary_emit; trace_analyze ]
  in
  let json =
    String.concat ""
      [
        "{\n";
        Printf.sprintf "  \"suite\": \"bench-core\",\n";
        Printf.sprintf "  \"git_rev\": \"%s\",\n"
          (Sim.Bench.json_escape (read_git_rev ()));
        Printf.sprintf "  \"config\": {\"quick\": %b, \"ops_scale\": %d},\n" quick
          ops_scale;
        Printf.sprintf "  \"cs_hit_alloc_ceiling\": %.6f,\n" cs_hit_alloc_ceiling;
        Printf.sprintf
          "  \"baseline\": {\"op\": \"engine-churn\", \"before_ns_per_op\": \
           %.3f, \"after_ns_per_op\": %.3f, \"speedup\": %.3f},\n"
          churn_old.Sim.Bench.ns_per_op churn.Sim.Bench.ns_per_op speedup;
        Printf.sprintf
          "  \"trace\": {\"events\": %d, \"jsonl_bytes_per_event\": %.3f, \
           \"binary_bytes_per_event\": %.3f, \"bytes_ratio\": %.4f, \
           \"jsonl_emit_ns_per_event\": %.3f, \"binary_emit_ns_per_event\": \
           %.3f, \"emit_speedup\": %.3f, \"binary_emit_allocs_per_op\": %.6f, \
           \"binary_emit_alloc_ceiling\": %.6f, \"analyze_ns_per_event\": \
           %.3f, \"analyze_events_per_s\": %.0f},\n"
          trace_n
          (float_of_int trace_jsonl_bytes /. float_of_int trace_n)
          (float_of_int trace_binary_bytes /. float_of_int trace_n)
          bytes_ratio trace_jsonl_emit.Sim.Bench.ns_per_op
          trace_binary_emit.Sim.Bench.ns_per_op emit_speedup
          trace_binary_emit.Sim.Bench.allocs_per_op binary_emit_alloc_ceiling
          trace_analyze.Sim.Bench.ns_per_op
          (1e9 /. trace_analyze.Sim.Bench.ns_per_op);
        "  \"results\": [\n";
        String.concat ",\n"
          (List.map (fun r -> "    " ^ Sim.Bench.result_to_json r) results);
        "\n  ]\n";
        "}\n";
      ]
  in
  let oc = open_out "BENCH_core.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_core.json (git %s)@." (read_git_rev ());
  if cs_hit.Sim.Bench.allocs_per_op > cs_hit_alloc_ceiling then begin
    Format.eprintf
      "FAIL: cs-hit allocates %.6f minor words/op (ceiling %.6f) — the \
       zero-allocation hit-path contract is broken@."
      cs_hit.Sim.Bench.allocs_per_op cs_hit_alloc_ceiling;
    exit 1
  end;
  if trace_binary_emit.Sim.Bench.allocs_per_op > binary_emit_alloc_ceiling
  then begin
    Format.eprintf
      "FAIL: binary trace emit allocates %.6f minor words/op (ceiling %.6f) — \
       a closure or box crept into the encoder hot path@."
      trace_binary_emit.Sim.Bench.allocs_per_op binary_emit_alloc_ceiling;
    exit 1
  end;
  if speedup < 2.0 then
    Format.eprintf
      "warning: engine churn speedup %.2fx below the 2x target (noise, or a \
       regression — compare BENCH_core.json against the checked-in one)@."
      speedup;
  if emit_speedup < 3.0 then
    Format.eprintf
      "warning: binary emit only %.2fx faster than jsonl (3x target — noise, \
       or the emit path regressed)@."
      emit_speedup;
  if bytes_ratio > 0.25 then
    Format.eprintf
      "warning: binary trace is %.3fx the jsonl bytes (0.25x target — did \
       interning or delta coding regress?)@."
      bytes_ratio;
  (* An O(live-table) expiry rescan would pay ~4096 entries per op here
     — microseconds, not the sub-µs an indexed pop costs.  Warn loudly
     (threshold is generous: 10x headroom on slow CI hosts). *)
  if pit_expire.Sim.Bench.ns_per_op > 10_000. then
    Format.eprintf
      "warning: pit-expire at %.0f ns/op looks like a live-table rescan — \
       the FIFO expiry index should make expire O(expired)@."
      pit_expire.Sim.Bench.ns_per_op
