(* Benchmark harness: regenerates every figure and in-text claim of the
   paper's evaluation, checks the theorems against ground truth, and
   runs Bechamel micro-benchmarks.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig3         # one experiment family
     dune exec bench/main.exe -- fig5 --full  # paper-scale trace (3.2M)
     dune exec bench/main.exe -- all --fast   # quick smoke pass
     dune exec bench/main.exe -- fig5 --jobs 4  # fan trials over 4 domains
     dune exec bench/main.exe -- fig3 --trace fig3.jsonl  # export a trace

   --jobs N sets the Sim.Parallel domain-pool size (default: one per
   hardware thread).  Output is bit-identical for any N — trial RNGs
   are split before dispatch and results merge in trial order.

   --trace FILE [--trace-format jsonl|csv|binary] records the fig3 campaigns'
   structured event traces (merged in run order, so also bit-identical
   for any --jobs) to FILE.

   Experiment index (see DESIGN.md for the full mapping):
     fig3  - Figure 3(a-d): timing-attack RTT distributions
     fig4  - Figure 4(a,b): closed-form utility comparison
     fig5  - Figure 5(a,b): trace-driven cache-hit rates
     text  - in-text claims (amplification, scope probe, naive leak,
             correlation/grouping)
     thms  - Theorems VI.1-VI.4 vs exact enumeration / Monte-Carlo
     ablation - design-choice ablations
     chaos - attack accuracy and cache utility under router churn
     micro - Bechamel micro-benchmarks
     core  - perf-regression suite (Sim.Bench); writes BENCH_core.json,
             exits non-zero if the CS hit path allocates (--quick for
             the CI smoke variant)
     scale - opt-in (not in "all"): cache-privacy sweep on a generated
             ISP hierarchy (11k routers / 1M aggregate users; --quick
             for a 211-router smoke) driven by Workload.Aggregate;
             writes BENCH_scale_tiers.csv and splices an events/sec
             entry into BENCH_core.json.  --shards K runs the network
             sharded over K Sim.Shard engine domains and adds a
             per-shard-count events/sec sweep (with wall-clock speedup
             vs one shard) to that entry
     overload - opt-in (not in "all"): interest-flooding sweep on the
             same generated hierarchy with the robust plane armed
             (finite PITs, NACKs, bounded link queues): flood
             intensity x admission policy x queue depth, recording
             attacker accuracy, false-negative rate, Random-Cache
             utility, goodput and give-up rate; splices an "overload"
             entry into BENCH_core.json (--quick for the smoke
             variant) *)

let usage () =
  print_endline
    "usage: main.exe \
     [all|fig3|fig4|fig5|text|thms|ablation|chaos|micro|core|scale|overload]... \
     [--fast|--full|--quick] [--jobs N] [--shards K] [--trace FILE] \
     [--trace-format jsonl|csv|binary]";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale =
    if List.mem "--full" args then 4 else if List.mem "--fast" args then 1 else 2
  in
  let fig5_scale =
    (* fig5 cost is dominated by trace length: 100k requests per unit.
       --full matches the paper's 3.2M requests. *)
    if List.mem "--full" args then 32 else if List.mem "--fast" args then 1 else 3
  in
  let jobs, args =
    let rec grab acc = function
      | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ ->
          prerr_endline "--jobs expects a positive integer";
          usage ())
      | "--jobs" :: [] ->
        prerr_endline "--jobs expects a positive integer";
        usage ()
      | a :: rest -> grab (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    grab [] args
  in
  let jobs = match jobs with Some j -> j | None -> Sim.Parallel.default_jobs () in
  let shards, args =
    let rec grab acc = function
      | "--shards" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s when s >= 1 -> (Some s, List.rev_append acc rest)
        | _ ->
          prerr_endline "--shards expects a positive integer";
          usage ())
      | "--shards" :: [] ->
        prerr_endline "--shards expects a positive integer";
        usage ()
      | a :: rest -> grab (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    grab [] args
  in
  let trace_file, args =
    let rec grab acc = function
      | "--trace" :: file :: rest when file = "" || file.[0] <> '-' ->
        (Some file, List.rev_append acc rest)
      | "--trace" :: _ ->
        prerr_endline "--trace expects a file name";
        usage ()
      | a :: rest -> grab (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    grab [] args
  in
  let trace_format, args =
    let rec grab acc = function
      | "--trace-format" :: f :: rest -> (
        match Sim.Trace.format_of_string f with
        | Some fmt -> (fmt, List.rev_append acc rest)
        | None ->
          prerr_endline "--trace-format expects jsonl, csv or binary";
          usage ())
      | "--trace-format" :: [] ->
        prerr_endline "--trace-format expects jsonl, csv or binary";
        usage ()
      | a :: rest -> grab (a :: acc) rest
      | [] -> (Sim.Trace.Jsonl, List.rev acc)
    in
    grab [] args
  in
  let trace = Option.map (fun file -> (file, trace_format)) trace_file in
  let selected =
    match List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args with
    | [] -> [ "all" ]
    | names -> names
  in
  let want name = List.mem "all" selected || List.mem name selected in
  List.iter
    (fun name ->
      if not (List.mem name [ "all"; "fig3"; "fig4"; "fig5"; "text"; "thms"; "ablation"; "chaos"; "micro"; "core"; "scale"; "overload" ])
      then usage ())
    selected;
  if want "fig3" then Bench_fig3.run ~scale ~jobs ?trace ();
  if want "fig4" then Bench_fig4.run ();
  if want "fig5" then Bench_fig5.run ~scale:fig5_scale ~jobs ();
  if want "text" then Bench_text.run ~scale ();
  if want "thms" then Bench_thms.run ~scale ~jobs ();
  if want "ablation" then Bench_ablation.run ~scale ~jobs ();
  if want "chaos" then Bench_chaos.run ~scale ~jobs ();
  if want "micro" then Bench_micro.run ();
  if want "core" then Bench_core.run ~quick:(List.mem "--quick" args) ();
  (* scale is opt-in (not part of "all"): the default run is an
     11k-router, 1M-user sweep. *)
  if List.mem "scale" selected then
    Bench_scale.run ~quick:(List.mem "--quick" args) ?shards ();
  (* overload is opt-in for the same reason: a 10-point flood sweep
     over the generated hierarchy. *)
  if List.mem "overload" selected then
    Bench_overload.run ~quick:(List.mem "--quick" args) ();
  Format.printf "@.done.@."
