(* Privacy-utility frontier explorer (Section VI).

     dune exec examples/tradeoff_explorer.exe -- [k] [requests_c] [jobs]

   For a content expected to be requested c times, tabulates the
   utility u(c) achievable at each privacy level (delta), for both
   Random-Cache instantiations — the designer's dial between "hide
   everything" and "cache everything".  All numbers come from the
   closed forms of Theorems VI.1-VI.4, cross-checked against exact
   enumeration.

   The per-delta rows are independent searches, so they are evaluated
   on a Sim.Parallel domain pool (and printed in delta order — the
   table is identical for any [jobs]). *)

open Privacy

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let c = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 50 in
  let jobs =
    if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3)
    else Sim.Parallel.default_jobs ()
  in
  Format.printf "== Privacy-utility frontier (k = %d, c = %d requests) ==@.@." k c;
  Format.printf
    "delta = probability mass on outputs that betray up-to-%d-request state@.@." k;
  Format.printf "%8s | %22s | %30s | %10s@." "delta" "Uniform (K, u)"
    "Exponential (eps, K, u)" "expo gain";
  let deltas = [| 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 |] in
  let explore delta =
    let domain_u = Theorems.Uniform.domain_for_delta ~k ~delta in
    let u_uni = Theorems.Uniform.utility_exact ~c ~domain:domain_u in
    (* Pick the most utility-friendly feasible eps: the largest eps
       keeping delta attainable is unbounded, so sweep a few and keep
       the best utility. *)
    let best =
      List.filter_map
        (fun eps ->
          let alpha = Theorems.Exponential.alpha_for_epsilon ~k ~eps in
          match Theorems.Exponential.domain_for_delta ~k ~alpha ~delta with
          | Some domain ->
            Some (eps, domain, Theorems.Exponential.utility_exact ~c ~alpha ~domain)
          | None -> None)
        [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 ]
      |> List.fold_left
           (fun acc (eps, domain, u) ->
             match acc with
             | Some (_, _, u') when u' >= u -> acc
             | _ -> Some (eps, domain, u))
           None
    in
    (delta, domain_u, u_uni, best)
  in
  Sim.Parallel.map ~jobs (Array.length deltas) (fun i -> explore deltas.(i))
  |> Array.iter (fun (delta, domain_u, u_uni, best) ->
         match best with
         | Some (eps, domain_e, u_exp) ->
           Format.printf "%8.3f | %10d %10.4f | %8.3f %8d %11.4f | %+9.4f@." delta
             domain_u u_uni eps domain_e u_exp (u_exp -. u_uni)
         | None ->
           Format.printf "%8.3f | %10d %10.4f | %30s | %10s@." delta domain_u
             u_uni "infeasible" "-");
  Format.printf
    "@.Exact achieved delta (enumeration) for the delta = 0.05 uniform row:@.";
  let domain = Theorems.Uniform.domain_for_delta ~k ~delta:0.05 in
  Format.printf "  K = %d -> achieved %.5f (bound %.5f)@." domain
    (Outputs.achieved_delta
       ~k_dist:(Theorems.Uniform.k_dist ~domain)
       ~k ~probes:(domain + k) ~eps:0.)
    (Theorems.Uniform.delta ~k ~domain);
  Format.printf
    "@.Rule of thumb: tighter delta costs utility roughly linearly in 1/delta@.";
  Format.printf
    "for small c (every real request risks being spent on a disguised miss),@.";
  Format.printf "and vanishes as content popularity c grows past E[K].@."
