(* CLI wrapper around the Ndnlint library: `dune build @lint` runs this
   over lib/ bin/ bench/ test/ tools/ and fails the build on any
   unallowed finding.  Findings go to stdout (text or JSONL); the
   summary and errors go to stderr.  Exit codes: 0 clean, 1 findings,
   2 usage.

   S3 (stale suppressions) is computed here over the syntactic rules
   only: a pragma or allowlist entry naming a typed rule (R1/A1/A2/G1)
   is left for ndntype_main, which sees the merged finding set. *)

let usage =
  "ndnlint [--root DIR] [--format text|jsonl] [--allowlist FILE]\n\
  \        [--trace-registry FILE] [--exclude DIR]... [PATH]...\n\n\
   Static determinism & invariant checks for the simulator tree.\n\
   PATHs default to: lib bin bench test tools (relative to --root)."

let () =
  let root = ref "." in
  let format = ref Ndnlint.Text in
  let allowlist = ref None in
  let registry = ref None in
  let no_default_suppressions = ref false in
  let excludes = ref [] in
  let paths = ref [] in
  let list_rules = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ( "--format",
        Arg.String
          (fun s ->
            match Ndnlint.format_of_string s with
            | Some f -> format := f
            | None ->
              prerr_endline ("ndnlint: unknown format " ^ s);
              exit 2),
        "FMT output format: text (default) or jsonl" );
      ( "--allowlist",
        Arg.String (fun s -> allowlist := Some s),
        "FILE allowlist (default: tools/ndnlint/allowlist.txt if present)" );
      ( "--trace-registry",
        Arg.String (fun s -> registry := Some s),
        "FILE trace-kind registry (default: lib/sim/trace_kinds.txt if \
         present)" );
      ( "--no-default-suppressions",
        Arg.Set no_default_suppressions,
        " ignore the default allowlist and registry lookup" );
      ( "--exclude",
        Arg.String (fun s -> excludes := s :: !excludes),
        "DIR skip this directory (repeatable; test/lint_fixtures and \
         test/typedlint_fixtures are always skipped)" );
      ("--rules", Arg.Set list_rules, " print the rule table and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%-3s %-7s %-9s %s\n" r.Ndnlint.id
          (match r.Ndnlint.severity with
          | Ndnlint.Error -> "error"
          | Ndnlint.Warning -> "warning")
          (if r.Ndnlint.typed then "typed" else "syntactic")
          r.Ndnlint.synopsis)
      Ndnlint.all_rules;
    exit 0
  end;
  let default rel current =
    match current with
    | Some _ -> current
    | None ->
      if
        (not !no_default_suppressions)
        && Sys.file_exists (Filename.concat !root rel)
      then Some rel
      else None
  in
  let cfg =
    Ndnlint.config
      ?paths:(match List.rev !paths with [] -> None | ps -> Some ps)
      ?allowlist_file:(default "tools/ndnlint/allowlist.txt" !allowlist)
      ?registry_file:(default "lib/sim/trace_kinds.txt" !registry)
      ~excludes:
        ("test/lint_fixtures" :: "test/typedlint_fixtures"
        :: List.rev !excludes)
      ~root:!root ()
  in
  match Ndnlint.lint_full cfg with
  | Error msg ->
    Printf.eprintf "ndnlint: %s\n" msg;
    exit 2
  | Ok (findings, inventory) ->
    let syntactic_rules =
      List.filter_map
        (fun r -> if r.Ndnlint.typed then None else Some r.Ndnlint.id)
        Ndnlint.all_rules
    in
    let stale =
      Ndnlint.stale_findings ~checked_rules:syntactic_rules inventory findings
    in
    let findings = Ndnlint.sort_findings (stale @ findings) in
    print_string (Ndnlint.render !format findings);
    let act = List.length (Ndnlint.active findings) in
    Printf.eprintf "ndnlint: %d finding(s), %d active\n"
      (List.length findings) act;
    exit (Ndnlint.exit_code findings)
