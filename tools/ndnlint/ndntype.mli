(** [ndntype] — the typed (.cmt-based) analysis stage.

    Consumes the Typedtree saved by the ordinary dune build (bin_annot
    is on tree-wide), so it sees resolved [Path.t]s and inferred types:
    aliases, functor instantiations and re-exports cannot hide a
    violation from it the way they can from the syntactic [Ndnlint]
    pass.  Produces findings for the typed rules of the shared table —

    - {b R1} module-level mutable state (refs, arrays, Hashtbl/Buffer/
      Queue values, records with mutable fields) in a unit reachable
      from multi-domain execution, unless confined via [Domain.DLS];
    - {b A1} allocation sites (closures, tuples, records, arrays, lazy
      blocks, partial applications, [@@]/[|>]) inside functions marked
      [(* ndnlint: hot *)];
    - {b A2} polymorphism hazards in hot functions: generic structural
      comparison at non-scalar types, [Stdlib.min]/[max],
      [Hashtbl.hash];
    - {b G1} a [Sim.Rng.t] handle drawn from (or stored) after being
      passed to [Rng.split] in the same compilation unit —

    resolving pragmas and the allowlist with [Ndnlint]'s own machinery
    so suppression semantics are identical across both stages.
    DESIGN.md §15 documents each rule, the R1 reachability
    approximation, and the known false-negative envelope.

    The pass must run where sources and [.cmt] files share a root:
    [dune build @typedlint] runs it in [_build/default] (unsandboxed,
    after [@check]); the tests run it from [_build/default/test] with
    [root = ".."]. *)

type hot_fn = {
  hf_file : string;  (** Root-relative source path. *)
  hf_name : string;  (** Bound name of the hot function. *)
  hf_line : int;  (** Line of its [let]. *)
}

type report = {
  findings : Ndnlint.finding list;  (** Sorted like {!Ndnlint.lint_full}. *)
  scanned : string list;  (** Source files with an analyzable cmt. *)
  shared_units : string list;
      (** Compilation units in the R1 domain-shared closure. *)
  hot_functions : hot_fn list;
      (** Every [(* ndnlint: hot *)] binding found — the A1/A2 universe;
          tests pin this inventory so annotations cannot silently
          detach from the bindings they cover. *)
}

type config = {
  root : string;
      (** Directory holding {e both} the sources and the [.objs]/
          [.eobjs] directories with their cmts — i.e. [_build/default]
          (or ".." from [_build/default/test]). *)
  paths : string list;  (** Source prefixes to analyze. *)
  excludes : string list;  (** Source prefixes never analyzed. *)
  allowlist_file : string option;  (** Relative to [root]. *)
  lib_prefixes : string list;
      (** Prefixes where R1 applies (module-level mutable state is only
          policed in library code). *)
  spawn_units : string list;
      (** Compilation units that place work on domains; seeds of the R1
          reachability closure. *)
}

val default_spawn_units : string list
(** [["Sim__Engine"; "Sim__Shard"; "Sim__Parallel"]]. *)

val config :
  ?paths:string list ->
  ?excludes:string list ->
  ?allowlist_file:string ->
  ?lib_prefixes:string list ->
  ?spawn_units:string list ->
  root:string ->
  unit ->
  config
(** Defaults: [paths = ["lib"; "bin"; "bench"; "test"; "tools"]],
    [excludes = ["test/lint_fixtures"; "test/typedlint_fixtures"]],
    [lib_prefixes = ["lib/"]], [spawn_units = default_spawn_units],
    no allowlist. *)

val run : config -> (report, string) result
(** Analyze every source file that has a cmt under [root].  [Error]
    covers configuration problems: an unreadable or malformed
    allowlist, or no cmt files at all (the build hasn't run).  A file
    whose cmt lacks a full implementation (packs, partial saves) is
    skipped, not an error. *)
