(* CLI for the merged lint: syntactic (Ndnlint) + typed (Ndntype) +
   stale-suppression (S3) over the union.  `dune build @typedlint` runs
   this in _build/default after @check so the cmts are fresh.  Because
   both passes have run, S3 judges every pragma and allowlist entry —
   including "all" tokens — against the full rule table.  Findings go
   to stdout (text or JSONL), summary to stderr; exit 0 clean,
   1 findings, 2 usage. *)

let usage =
  "ndntype [--root DIR] [--format text|jsonl] [--allowlist FILE]\n\
  \        [--trace-registry FILE] [--exclude DIR]... [--typed-only]\n\
  \        [PATH]...\n\n\
   Typed (.cmt) + syntactic determinism checks, merged.  Run from\n\
   _build/default (or any root where sources and .objs live together).\n\
   PATHs default to: lib bin bench test tools (relative to --root)."

let () =
  let root = ref "." in
  let format = ref Ndnlint.Text in
  let allowlist = ref None in
  let registry = ref None in
  let no_default_suppressions = ref false in
  let typed_only = ref false in
  let excludes = ref [] in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR build-tree root (default: .)");
      ( "--format",
        Arg.String
          (fun s ->
            match Ndnlint.format_of_string s with
            | Some f -> format := f
            | None ->
              prerr_endline ("ndntype: unknown format " ^ s);
              exit 2),
        "FMT output format: text (default) or jsonl" );
      ( "--allowlist",
        Arg.String (fun s -> allowlist := Some s),
        "FILE allowlist (default: tools/ndnlint/allowlist.txt if present)" );
      ( "--trace-registry",
        Arg.String (fun s -> registry := Some s),
        "FILE trace-kind registry (default: lib/sim/trace_kinds.txt if \
         present)" );
      ( "--no-default-suppressions",
        Arg.Set no_default_suppressions,
        " ignore the default allowlist and registry lookup" );
      ( "--typed-only",
        Arg.Set typed_only,
        " skip the syntactic pass and S3 (report R1/A1/A2/G1 only)" );
      ( "--exclude",
        Arg.String (fun s -> excludes := s :: !excludes),
        "DIR skip this directory (repeatable; lint fixture trees are \
         always skipped)" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> None | ps -> Some ps in
  let excludes =
    "test/lint_fixtures" :: "test/typedlint_fixtures" :: List.rev !excludes
  in
  let default rel current =
    match current with
    | Some _ -> current
    | None ->
      if
        (not !no_default_suppressions)
        && Sys.file_exists (Filename.concat !root rel)
      then Some rel
      else None
  in
  let allowlist_file = default "tools/ndnlint/allowlist.txt" !allowlist in
  let typed_cfg =
    Ndntype.config ?paths ?allowlist_file ~excludes ~root:!root ()
  in
  let typed =
    match Ndntype.run typed_cfg with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "ndntype: %s\n" msg;
      exit 2
  in
  let findings =
    if !typed_only then typed.Ndntype.findings
    else begin
      let syn_cfg =
        Ndnlint.config ?paths ?allowlist_file
          ?registry_file:(default "lib/sim/trace_kinds.txt" !registry)
          ~excludes ~root:!root ()
      in
      match Ndnlint.lint_full syn_cfg with
      | Error msg ->
        Printf.eprintf "ndntype: %s\n" msg;
        exit 2
      | Ok (syn_findings, inventory) ->
        let merged = syn_findings @ typed.Ndntype.findings in
        let stale =
          Ndnlint.stale_findings
            ~checked_rules:(List.map (fun r -> r.Ndnlint.id) Ndnlint.all_rules)
            inventory merged
        in
        Ndnlint.sort_findings (stale @ merged)
    end
  in
  print_string (Ndnlint.render !format findings);
  let act = List.length (Ndnlint.active findings) in
  Printf.eprintf
    "ndntype: %d finding(s), %d active; %d hot function(s), %d shared \
     unit(s), %d file(s) analyzed\n"
    (List.length findings) act
    (List.length typed.Ndntype.hot_functions)
    (List.length typed.Ndntype.shared_units)
    (List.length typed.Ndntype.scanned);
  exit (Ndnlint.exit_code findings)
