(* Typed analysis pass over the .cmt files the normal dune build
   already produces (bin_annot is on everywhere).  Where Ndnlint parses
   single files syntactically, this stage loads Typedtree structures
   with resolved [Path.t]s and inferred types, so aliases, functor
   instantiations and re-exports cannot hide a violation.  Rules:

   R1  module-level mutable state in a domain-shared unit
   A1  allocation site inside an [(* ndnlint: hot *)] function
   A2  polymorphism hazard inside a hot function
   G1  Sim.Rng handle used again after being split

   The pass shares Ndnlint's finding type, pragma and allowlist
   machinery, so suppressions resolve identically in both stages.  It
   must run where sources and .cmt files share one root: dune executes
   the @typedlint rule in _build/default (with (sandbox none) so the
   .objs directories are visible), and the test suite runs in
   _build/default/test with root "..".  See DESIGN.md §15 for the rule
   table, the R1 reachability approximation, and the documented
   false-negative envelope. *)

open Typedtree

type hot_fn = { hf_file : string; hf_name : string; hf_line : int }

type report = {
  findings : Ndnlint.finding list;
  scanned : string list;
  shared_units : string list;
  hot_functions : hot_fn list;
}

type config = {
  root : string;
  paths : string list;
  excludes : string list;
  allowlist_file : string option;
  lib_prefixes : string list;
  spawn_units : string list;
}

let default_spawn_units = [ "Sim__Engine"; "Sim__Shard"; "Sim__Parallel" ]

let config ?(paths = [ "lib"; "bin"; "bench"; "test"; "tools" ])
    ?(excludes = [ "test/lint_fixtures"; "test/typedlint_fixtures" ])
    ?allowlist_file ?(lib_prefixes = [ "lib/" ])
    ?(spawn_units = default_spawn_units) ~root () =
  { root; paths; excludes; allowlist_file; lib_prefixes; spawn_units }

(* --- small helpers --- *)

let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let under prefix file =
  prefix = file
  ||
  let prefix =
    if String.length prefix > 0 && prefix.[String.length prefix - 1] = '/' then
      prefix
    else prefix ^ "/"
  in
  String.starts_with ~prefix file

let pos_of_loc (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let path_components p = String.split_on_char '.' (Path.name p)

let contains_from line pos sub =
  let n = String.length sub and m = String.length line in
  let rec go i =
    if i + n > m then None
    else if String.sub line i n = sub then Some i
    else go (i + 1)
  in
  go pos

(* Lines carrying an [(* ndnlint: hot *)] marker.  The marker goes on
   its own line directly above the [let] (or at the end of the [let]
   line itself). *)
let hot_lines src =
  let out = ref [] in
  List.iteri
    (fun i line ->
      match contains_from line 0 "ndnlint:" with
      | Some idx ->
        let rest =
          String.sub line (idx + 8) (String.length line - idx - 8)
          |> String.trim
        in
        if String.length rest >= 3 && String.sub rest 0 3 = "hot" then
          out := (i + 1) :: !out
      | None -> ())
    (String.split_on_char '\n' src);
  !out

(* --- cmt discovery --- *)

(* The build places library cmts in <dir>/.<lib>.objs/byte/ and
   executable cmts in <dir>/.<exe>.eobjs/byte/, alongside the copied
   sources; a plain recursive walk finds both.  [cmt_sourcefile] is
   build-root-relative ("lib/sim/engine.ml"), which is exactly the
   path space Ndnlint findings live in. *)
let find_cmt_files root =
  let out = ref [] in
  let rec walk rel =
    let abs = if rel = "" then root else Filename.concat root rel in
    match Sys.readdir abs with
    | exception Sys_error _ -> ()
    | entries ->
      Array.to_list entries |> List.sort String.compare
      |> List.iter (fun entry ->
             let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
             let abs' = Filename.concat root rel' in
             if try Sys.is_directory abs' with Sys_error _ -> false then begin
               if not (List.mem entry [ "_build"; ".git"; "node_modules" ])
               then walk rel'
             end
             else if Filename.check_suffix entry ".cmt" then
               out := rel' :: !out)
  in
  walk "";
  List.rev !out

type unit_info = {
  u_name : string;
  u_imports : string list;
  u_source : string option;
  u_annots : Cmt_format.binary_annots;
}

let load_units cfg =
  find_cmt_files cfg.root
  |> List.filter_map (fun rel ->
         match Cmt_format.read_cmt (Filename.concat cfg.root rel) with
         | cmt ->
           Some
             {
               u_name = cmt.Cmt_format.cmt_modname;
               u_imports = List.map fst cmt.Cmt_format.cmt_imports;
               u_source = cmt.Cmt_format.cmt_sourcefile;
               u_annots = cmt.Cmt_format.cmt_annots;
             }
         | exception _ -> None)

(* --- R1 reachability: which units run on shard domains? ---

   Approximation: a unit is domain-shared when it is a spawn unit
   (Engine/Shard/Parallel), directly imports one (such code can build
   closures the engine later fires on a shard domain), or is imported —
   transitively — by any such unit (its functions are callable from
   that code).  Deliberately coarse: almost all of lib/ is shared,
   which matches reality — any lib function can end up inside a
   scheduled event callback.  False negatives are the interesting
   direction and are documented in DESIGN.md §15. *)
let shared_closure cfg units =
  let imports_of = Hashtbl.create 64 in
  List.iter
    (fun u ->
      if not (Hashtbl.mem imports_of u.u_name) then
        Hashtbl.add imports_of u.u_name u.u_imports)
    units;
  let shared = Hashtbl.create 64 in
  let rec mark name =
    if Hashtbl.mem imports_of name && not (Hashtbl.mem shared name) then begin
      Hashtbl.add shared name ();
      List.iter mark
        (match Hashtbl.find_opt imports_of name with
        | Some l -> l
        | None -> [])
    end
  in
  List.iter
    (fun u ->
      if
        List.mem u.u_name cfg.spawn_units
        || List.exists (fun i -> List.mem i cfg.spawn_units) u.u_imports
      then mark u.u_name)
    units;
  shared

(* --- R1: module-level mutable state --- *)

let mutable_type_names =
  [
    "ref"; "Stdlib.ref"; "array"; "bytes";
    "Hashtbl.t"; "Stdlib.Hashtbl.t";
    "Buffer.t"; "Stdlib.Buffer.t";
    "Queue.t"; "Stdlib.Queue.t";
    "Stack.t"; "Stdlib.Stack.t";
    "Atomic.t"; "Stdlib.Atomic.t";
    "Weak.t"; "Stdlib.Weak.t";
  ]

(* What makes this binding mutable, if anything: a record expression
   with mutable labels (catches local record types whose declarations
   we cannot cheaply resolve), or a value whose inferred type is one of
   the standard mutable containers.  Functions are never flagged — only
   values materialized at module init.  [Domain.DLS.new_key] results
   are ['a Domain.DLS.key] and fall through both tests, which is the
   intended escape: DLS-confined state is per-domain by construction. *)
let rec mutable_witness e =
  match e.exp_desc with
  | Texp_function _ -> None
  | Texp_record { fields; _ }
    when Array.exists
           (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
           fields -> Some "record with mutable fields"
  | Texp_array _ -> Some "array literal"
  | Texp_let (_, _, body) -> mutable_witness body
  | Texp_sequence (_, body) -> mutable_witness body
  | _ -> (
    match Types.get_desc e.exp_type with
    | Types.Tconstr (p, _, _) when List.mem (Path.name p) mutable_type_names ->
      Some (Path.name p)
    | _ -> None)

(* An annotated binding [let x : t = e] elaborates to
   [Tpat_alias (Tpat_any, x, _)], so look through aliases too. *)
let binding_name pat =
  match pat.pat_desc with
  | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Ident.name id
  | _ -> "(pattern)"

let rec r1_structure ~emit str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match mutable_witness vb.vb_expr with
            | Some what ->
              let line, col = pos_of_loc vb.vb_loc in
              emit ~rule:"R1" ~line ~col
                ~msg:
                  (Printf.sprintf
                     "module-level mutable state `%s` (%s) in a \
                      domain-shared unit; shard domains can reach it \
                      concurrently — confine it with Domain.DLS, thread it \
                      through explicit state, or allowlist with an \
                      ownership justification"
                     (binding_name vb.vb_pat) what)
            | None -> ())
          vbs
      | Tstr_module mb -> r1_module ~emit mb.mb_expr
      | Tstr_recmodule mbs ->
        List.iter (fun mb -> r1_module ~emit mb.mb_expr) mbs
      | _ -> ())
    str.str_items

and r1_module ~emit me =
  match me.mod_desc with
  | Tmod_structure str -> r1_structure ~emit str
  | Tmod_constraint (me, _, _, _) -> r1_module ~emit me
  | _ -> ()

(* --- A1/A2: the zero-alloc hot path --- *)

(* Peel the parameter spine so the hot function's own [fun]/[function]
   layers are not reported as closures; everything underneath is body. *)
let rec function_bodies e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    List.concat_map (fun c -> function_bodies c.c_rhs) cases
  | _ -> [ e ]

(* Trace emission is compiled behind [if Trace.enabled ... then]; the
   then-branch is off on the hot path by construction, so its
   allocations do not count against A1/A2. *)
let rec cond_checks_trace_enabled e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match List.rev (path_components p) with
    | "enabled" :: _ -> true
    | _ -> false)
  | Texp_apply (f, args) ->
    cond_checks_trace_enabled f
    || List.exists
         (fun (_, a) ->
           match a with Some a -> cond_checks_trace_enabled a | None -> false)
         args
  | _ -> false

let specializable_compares = [ "="; "<>"; "<"; ">"; "<="; ">="; "compare" ]

let immediate_scalar ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
    List.mem (Path.name p) [ "int"; "float"; "string"; "bool"; "char" ]
  | _ -> false

let type_label ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.name p
  | Types.Tvar _ -> "a type variable"
  | _ -> "a structured type"

let scan_hot_body ~emit name body =
  let a1 loc msg =
    let line, col = pos_of_loc loc in
    emit ~rule:"A1" ~line ~col
      ~msg:(Printf.sprintf "%s in hot function `%s`" msg name)
  in
  let a2 loc msg =
    let line, col = pos_of_loc loc in
    emit ~rule:"A2" ~line ~col
      ~msg:(Printf.sprintf "%s in hot function `%s`" msg name)
  in
  let check_apply e head args =
    (* A partially applied call materializes a closure: either a
       labelled argument is omitted (the [None] slots) or the whole
       application still has an arrow type. *)
    if List.exists (fun (_, a) -> a = None) args then
      a1 e.exp_loc "partial application (omitted labelled argument)"
    else (
      match Types.get_desc e.exp_type with
      | Types.Tarrow _ -> a1 e.exp_loc "partial application"
      | _ -> ());
    match head.exp_desc with
    | Texp_ident (p, _, _) -> (
      match path_components p with
      | [ "Stdlib"; ("@@" | "|>") ] ->
        a1 e.exp_loc "@@/|> application; call the function directly"
      | [ "Stdlib"; op ] when List.mem op specializable_compares -> (
        match
          List.find_map (fun (_, a) -> a) args
        with
        | Some arg when not (immediate_scalar arg.exp_type) ->
          a2 e.exp_loc
            (Printf.sprintf
               "generic structural (%s) at %s; the compiler specializes \
                comparisons only at immediate scalar types — use a \
                monomorphic compare"
               op (type_label arg.exp_type))
        | _ -> ())
      | [ "Stdlib"; (("min" | "max") as op) ] ->
        a2 e.exp_loc
          (Printf.sprintf
             "Stdlib.%s is never specialized (generic caml_compare); \
              write the comparison out" op)
      | [ "Stdlib"; "Hashtbl"; (("hash" | "seeded_hash") as op) ]
      | [ "Hashtbl"; (("hash" | "seeded_hash") as op) ] ->
        a2 e.exp_loc
          (Printf.sprintf
             "polymorphic Hashtbl.%s walks the value generically; hash a \
              canonical scalar instead" op)
      | _ -> ())
    | _ -> ()
  in
  let rec walk e =
    match e.exp_desc with
    | Texp_ifthenelse (cond, then_, else_)
      when cond_checks_trace_enabled cond ->
      walk cond;
      ignore then_;
      Option.iter walk else_
    | _ ->
      (match e.exp_desc with
      | Texp_function _ -> a1 e.exp_loc "closure allocation"
      | Texp_tuple _ -> a1 e.exp_loc "tuple allocation"
      | Texp_record _ -> a1 e.exp_loc "record allocation"
      | Texp_array _ -> a1 e.exp_loc "array allocation"
      | Texp_lazy _ -> a1 e.exp_loc "lazy-block allocation"
      | Texp_apply (head, args) -> check_apply e head args
      | _ -> ());
      descend e
  and descend e =
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ child -> if child != e then walk child);
      }
    in
    Tast_iterator.default_iterator.expr it e
  in
  walk body

(* Hot bindings live at module level (possibly inside nested modules):
   an [(* ndnlint: hot *)] marker on the line of — or the line above —
   a [let] puts that binding in the checked set. *)
let rec hot_structure ~hot_lines ~on_hot str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let line, _ = pos_of_loc vb.vb_loc in
            if List.mem line hot_lines || List.mem (line - 1) hot_lines then
              on_hot vb line)
          vbs
      | Tstr_module mb -> hot_module ~hot_lines ~on_hot mb.mb_expr
      | Tstr_recmodule mbs ->
        List.iter (fun mb -> hot_module ~hot_lines ~on_hot mb.mb_expr) mbs
      | _ -> ())
    str.str_items

and hot_module ~hot_lines ~on_hot me =
  match me.mod_desc with
  | Tmod_structure str -> hot_structure ~hot_lines ~on_hot str
  | Tmod_constraint (me, _, _, _) -> hot_structure_of ~hot_lines ~on_hot me
  | _ -> ()

and hot_structure_of ~hot_lines ~on_hot me = hot_module ~hot_lines ~on_hot me

(* --- G1: use-after-split on Sim.Rng handles --- *)

let is_rng_path suffix p =
  match List.rev (path_components p) with
  | last :: penult :: _ ->
    last = suffix && String.ends_with ~suffix:"Rng" penult
  | _ -> false

let is_rng_handle_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> String.ends_with ~suffix:"Rng.t" (Path.name p)
  | _ -> false

let scan_g1 ~emit str =
  let splits : (Ident.t * (int * int)) list ref = ref [] in
  let uses : (Ident.t * (int * int)) list ref = ref [] in
  let exempt : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
            when is_rng_path "split" p || is_rng_path "copy" p ->
            List.iter
              (fun (_, a) ->
                match a with
                | Some
                    ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ } as
                     arg) ->
                  let at = pos_of_loc arg.exp_loc in
                  (* The handle's appearance inside split/copy itself is
                     not a "use": splitting the same parent repeatedly
                     is the pre-split discipline G1 protects. *)
                  Hashtbl.replace exempt at ();
                  if is_rng_path "split" p then splits := (id, at) :: !splits
                | _ -> ())
              args
          | Texp_ident (Path.Pident id, _, _)
            when is_rng_handle_type e.exp_type ->
            uses := (id, pos_of_loc e.exp_loc) :: !uses
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it str;
  List.iter
    (fun (id, ((line, col) as at)) ->
      if not (Hashtbl.mem exempt at) then
        match
          List.find_opt
            (fun (sid, sat) -> Ident.same sid id && sat < at)
            !splits
        with
        | Some (_, (sline, _)) ->
          emit ~rule:"G1" ~line ~col
            ~msg:
              (Printf.sprintf
                 "RNG handle `%s` was split at line %d and is used again \
                  here; after a split, draw only from the children (or \
                  suppress with a stream-layout justification)"
                 (Ident.name id) sline)
        | None -> ())
    (List.rev !uses)

(* --- the driver --- *)

let run cfg =
  let allowlist =
    match cfg.allowlist_file with
    | None -> Ok []
    | Some f -> (
      match read_file (Filename.concat cfg.root f) with
      | content -> Ndnlint.parse_allowlist ~file:f content
      | exception Sys_error e -> Error e)
  in
  match allowlist with
  | Error e -> Error e
  | Ok allowlist -> (
    let units = load_units cfg in
    if units = [] then
      Error
        (Printf.sprintf
           "no .cmt files under %S; run `dune build @check` first and point \
            --root at the build tree (the @typedlint alias does both)"
           cfg.root)
    else begin
      let shared = shared_closure cfg units in
      let in_scope rel =
        Filename.check_suffix rel ".ml"
        && List.exists (fun p -> under p rel) cfg.paths
        && not (List.exists (fun e -> under e rel) cfg.excludes)
      in
      (* One analysis per source file: the same module can surface via
         several cmts (a library and a test executable); first wins. *)
      let seen = Hashtbl.create 64 in
      let analyzable =
        List.filter
          (fun u ->
            match u.u_source with
            | Some rel
              when in_scope rel
                   && Sys.file_exists (Filename.concat cfg.root rel)
                   && not (Hashtbl.mem seen rel) ->
              Hashtbl.add seen rel ();
              true
            | _ -> false)
          units
      in
      let findings = ref [] in
      let hot_fns = ref [] in
      List.iter
        (fun u ->
          let rel = Option.get u.u_source in
          match u.u_annots with
          | Cmt_format.Implementation str ->
            let src = read_file (Filename.concat cfg.root rel) in
            let pragmas = Ndnlint.pragmas_of_source src in
            let emit ~rule ~line ~col ~msg =
              let status =
                if Ndnlint.pragma_suppresses pragmas ~line ~rule then
                  Ndnlint.Pragma_suppressed
                else
                  match Ndnlint.allowlist_lookup allowlist ~rule ~file:rel with
                  | Some e -> Ndnlint.Allowlisted e.Ndnlint.a_just
                  | None -> Ndnlint.Active
              in
              findings :=
                {
                  Ndnlint.rule;
                  severity = Ndnlint.severity_of_rule rule;
                  file = rel;
                  line;
                  col;
                  message = msg;
                  status;
                }
                :: !findings
            in
            if
              List.exists (fun p -> under p rel) cfg.lib_prefixes
              && Hashtbl.mem shared u.u_name
            then r1_structure ~emit str;
            let hots = hot_lines src in
            if hots <> [] then
              hot_structure ~hot_lines:hots
                ~on_hot:(fun vb line ->
                  let name = binding_name vb.vb_pat in
                  hot_fns :=
                    { hf_file = rel; hf_name = name; hf_line = line }
                    :: !hot_fns;
                  List.iter (scan_hot_body ~emit name)
                    (function_bodies vb.vb_expr))
                str;
            scan_g1 ~emit str
          | _ -> ())
        analyzable;
      let shared_units =
        Hashtbl.fold (fun k () acc -> k :: acc) shared []
        |> List.sort String.compare
      in
      Ok
        {
          findings = Ndnlint.sort_findings !findings;
          scanned =
            List.filter_map (fun u -> u.u_source) analyzable
            |> List.sort String.compare;
          shared_units;
          hot_functions =
            List.sort
              (fun a b ->
                match String.compare a.hf_file b.hf_file with
                | 0 -> Int.compare a.hf_line b.hf_line
                | c -> c)
              !hot_fns;
        }
    end)
