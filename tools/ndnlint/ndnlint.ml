(* Static determinism & invariant linter for the simulator tree.

   Purely syntactic: files are parsed with the compiler's own parser
   and walked with Ast_iterator; no typing environment is built, so
   the linter runs on a single file in isolation (fixtures need not
   compile) and never depends on build order.  See ndnlint.mli and
   DESIGN.md §11 for the rule table and the documented heuristics. *)

type severity = Error | Warning

type status = Active | Allowlisted of string | Pragma_suppressed

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  status : status;
}

type rule_info = { id : string; severity : severity; synopsis : string; typed : bool }

let all_rules =
  [
    { id = "E0"; severity = Error; typed = false;
      synopsis = "source file does not parse" };
    {
      id = "D1";
      severity = Error;
      typed = false;
      synopsis = "nondeterministic RNG seeding (Random.self_init)";
    };
    {
      id = "D2";
      severity = Error;
      typed = false;
      synopsis = "global Random state used outside Sim.Rng";
    };
    {
      id = "D3";
      severity = Error;
      typed = false;
      synopsis = "wall-clock read outside bin/";
    };
    {
      id = "D4";
      severity = Error;
      typed = false;
      synopsis = "environment read inside lib/";
    };
    {
      id = "D5";
      severity = Error;
      typed = false;
      synopsis = "polymorphic compare/hash in key-bearing libraries";
    };
    {
      id = "D6";
      severity = Error;
      typed = false;
      synopsis = "structural (in)equality on an abstract key value";
    };
    {
      id = "D7";
      severity = Warning;
      typed = false;
      synopsis = "unordered Hashtbl.iter/fold in lib/ with no visible sort";
    };
    {
      id = "D8";
      severity = Error;
      typed = false;
      synopsis =
        "raw concurrency primitive (Domain/Mutex/Condition/Atomic) outside \
         Sim.Parallel / Sim.Shard";
    };
    {
      id = "T1";
      severity = Error;
      typed = false;
      synopsis = "trace kind emitted but missing from the registry";
    };
    {
      id = "T2";
      severity = Error;
      typed = false;
      synopsis = "registry lists a trace kind no longer emitted";
    };
    {
      id = "T3";
      severity = Error;
      typed = false;
      synopsis = "NACK reason constructor lacks a registered nack.* trace kind";
    };
    {
      id = "T4";
      severity = Error;
      typed = false;
      synopsis =
        "binary kind-id table out of sync with the trace-kind registry \
         (missing or misnumbered kind_id case)";
    };
    { id = "S1"; severity = Error; typed = false;
      synopsis = "lib module lacks an .mli" };
    { id = "S2"; severity = Error; typed = false;
      synopsis = "stdout output from lib/" };
    {
      id = "S3";
      severity = Warning;
      typed = false;
      synopsis =
        "stale suppression: pragma or allowlist entry matches no finding \
         (computed by stale_findings over a finished run, not by the scanner)";
    };
    {
      id = "R1";
      severity = Error;
      typed = true;
      synopsis =
        "module-level mutable state reachable from multi-domain execution \
         (typed; ndntype pass)";
    };
    {
      id = "A1";
      severity = Error;
      typed = true;
      synopsis =
        "allocation site (closure/tuple/record/boxed float/partial \
         application) in an (* ndnlint: hot *) function (typed; ndntype pass)";
    };
    {
      id = "A2";
      severity = Error;
      typed = true;
      synopsis =
        "polymorphism hazard (generic compare, float-array dispatch) in a \
         hot function (typed; ndntype pass)";
    };
    {
      id = "G1";
      severity = Error;
      typed = true;
      synopsis =
        "Sim.Rng handle drawn from / handed off after being split (typed; \
         ndntype pass)";
    };
  ]

let severity_of_rule id =
  match List.find_opt (fun r -> r.id = id) all_rules with
  | Some r -> r.severity
  | None -> Error

let rule_ids = List.map (fun r -> r.id) all_rules

(* Path-scoped severity overrides: a rule can be switched off (Skip) or
   demoted to Warning (Demote) under a path prefix.  The default table
   allows wall-clock reads in bench/ and tools/ — benchmark harnesses
   and developer tooling legitimately measure real time, while lib/
   must only ever see virtual time. *)
type scoped_action = Skip | Demote

type scoped_severity = {
  s_rule : string;
  s_path : string;
  s_action : scoped_action;
}

let default_scoped =
  [
    { s_rule = "D3"; s_path = "bench/"; s_action = Skip };
    { s_rule = "D3"; s_path = "tools/"; s_action = Skip };
  ]

type config = {
  root : string;
  paths : string list;
  allowlist_file : string option;
  registry_file : string option;
  excludes : string list;
  key_modules : string list;
  scoped : scoped_severity list;
}

let default_excludes = [ "test/lint_fixtures"; "test/typedlint_fixtures" ]

let config ?(paths = [ "lib"; "bin"; "bench"; "test"; "tools" ]) ?allowlist_file
    ?registry_file ?(excludes = default_excludes)
    ?(key_modules = [ "Name"; "Interest"; "Data"; "Packet" ])
    ?(scoped = default_scoped) ~root () =
  { root; paths; allowlist_file; registry_file; excludes; key_modules; scoped }

(* --- small string helpers --- *)

let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let contains_from line pos sub =
  let n = String.length sub and m = String.length line in
  let rec go i =
    if i + n > m then None
    else if String.sub line i n = sub then Some i
    else go (i + 1)
  in
  go pos

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let is_rule_token t = t = "all" || List.mem t rule_ids

(* --- pragmas: (* ndnlint: allow RULE[, RULE...] [-- why] *) ---

   A pragma suppresses the listed rules (or every rule, for "all") on
   its own line; when the pragma is the only thing on its line, it also
   covers the next line, so it can sit above the offending code.  Rule
   IDs are separated by whitespace or commas, so one comment can
   suppress several rules; a line may also carry several independent
   [ndnlint:] pragmas. *)

type pragma_site = {
  ps_line : int;  (* line the pragma comment sits on *)
  ps_rules : string list;  (* rule tokens, "all" included *)
  ps_covers : int list;  (* lines the pragma suppresses on *)
}

type pragmas = {
  cover : (int, string list) Hashtbl.t;
  sites : pragma_site list;
}

let pragmas_of_source src =
  let tbl : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let sites = ref [] in
  let add lineno rules =
    let prev = Option.value (Hashtbl.find_opt tbl lineno) ~default:[] in
    Hashtbl.replace tbl lineno (prev @ rules)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let rec scan_from pos =
        match contains_from line pos "ndnlint:" with
        | None -> ()
        | Some idx ->
          let rest =
            String.sub line (idx + 8) (String.length line - idx - 8)
            |> String.trim
          in
          (if String.length rest >= 5 && String.sub rest 0 5 = "allow" then begin
             let rest = String.sub rest 5 (String.length rest - 5) in
             (* Rule IDs end at the justification ("--") or comment
                close; commas count as separators. *)
             let stop =
               min
                 (Option.value (contains_from rest 0 "--")
                    ~default:(String.length rest))
                 (Option.value (contains_from rest 0 "*)")
                    ~default:(String.length rest))
             in
             let rules =
               String.sub rest 0 stop
               |> String.map (fun c -> if c = ',' then ' ' else c)
               |> split_ws
               |> List.filter is_rule_token
             in
             if rules <> [] then begin
               add lineno rules;
               let comment_only =
                 match contains_from line 0 "(*" with
                 | Some copen -> String.trim (String.sub line 0 copen) = ""
                 | None -> false
               in
               if comment_only then add (lineno + 1) rules;
               let covers =
                 if comment_only then [ lineno; lineno + 1 ] else [ lineno ]
               in
               sites :=
                 { ps_line = lineno; ps_rules = rules; ps_covers = covers }
                 :: !sites
             end
           end);
          scan_from (idx + 8)
      in
      scan_from 0)
    (String.split_on_char '\n' src);
  { cover = tbl; sites = List.rev !sites }

let pragma_suppresses pragmas ~line ~rule =
  match Hashtbl.find_opt pragmas.cover line with
  | None -> false
  | Some rules -> List.mem "all" rules || List.mem rule rules

let pragma_sites pragmas = pragmas.sites

(* --- allowlist: RULE PATH -- justification --- *)

type allow_entry = {
  a_rule : string;
  a_path : string;
  a_just : string;
  a_line : int;
}

let parse_allowlist ~file content =
  let entries = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        let lineno = i + 1 in
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then
          match contains_from line 0 "--" with
          | None ->
            err :=
              Some
                (Printf.sprintf
                   "%s:%d: allowlist entry lacks a ' -- justification'" file
                   lineno)
          | Some sep -> (
            let just =
              String.trim
                (String.sub line (sep + 2) (String.length line - sep - 2))
            in
            let head = String.trim (String.sub line 0 sep) in
            match (split_ws head, just) with
            | _, "" ->
              err :=
                Some
                  (Printf.sprintf "%s:%d: empty allowlist justification" file
                     lineno)
            | [ rule; path ], _ when is_rule_token rule ->
              entries :=
                { a_rule = rule; a_path = path; a_just = just; a_line = lineno }
                :: !entries
            | [ rule; _ ], _ ->
              err :=
                Some
                  (Printf.sprintf "%s:%d: unknown rule ID %S" file lineno rule)
            | _ ->
              err :=
                Some
                  (Printf.sprintf
                     "%s:%d: expected 'RULE PATH -- justification'" file
                     lineno)))
    (String.split_on_char '\n' content);
  match !err with Some e -> Result.Error e | None -> Ok (List.rev !entries)

let path_in_scope scope file =
  scope = file
  ||
  let scope =
    if String.length scope > 0 && scope.[String.length scope - 1] = '/' then
      scope
    else scope ^ "/"
  in
  String.starts_with ~prefix:scope file

let allowlist_lookup entries ~rule ~file =
  List.find_opt
    (fun e ->
      (e.a_rule = "all" || e.a_rule = rule) && path_in_scope e.a_path file)
    entries

(* --- trace-kind registry: one wire name per line --- *)

let parse_registry content =
  let kinds = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then kinds := (line, i + 1) :: !kinds)
    (String.split_on_char '\n' content);
  List.rev !kinds

(* --- file discovery --- *)

let skip_dir_names = [ "_build"; ".git"; ".objs"; "node_modules" ]

let collect_files cfg =
  let files = ref [] in
  let excluded rel =
    List.exists (fun e -> e = rel || path_in_scope e rel) cfg.excludes
  in
  let rec walk rel =
    let abs = Filename.concat cfg.root rel in
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.iter (fun entry ->
           let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
           let abs' = Filename.concat cfg.root rel' in
           if Sys.is_directory abs' then begin
             if not (List.mem entry skip_dir_names || excluded rel') then
               walk rel'
           end
           else if
             (Filename.check_suffix entry ".ml"
             || Filename.check_suffix entry ".mli")
             && not (excluded rel')
           then files := rel' :: !files)
  in
  List.iter
    (fun p ->
      let abs = Filename.concat cfg.root p in
      if not (Sys.file_exists abs) then
        invalid_arg (Printf.sprintf "ndnlint: no such path %S under %S" p cfg.root)
      else if Sys.is_directory abs then walk p
      else files := p :: !files)
    cfg.paths;
  List.sort_uniq String.compare !files

(* --- per-file scan --- *)

open Parsetree

type file_ctx = {
  rel : string;
  in_lib : bool;
  in_bin : bool;
  in_keyspace : bool;  (* lib/sim or lib/ndn: abstract keys live here *)
  is_rng_impl : bool;
  is_nack_impl : bool;
      (* Any nack.ml: its [type reason] constructors must each have a
         registered [nack.<constructor>] trace kind (T3), so a reason
         can never be added without a corresponding observable event. *)
  is_domain_impl : bool;
      (* lib/sim/parallel.ml and lib/sim/shard.ml: the only modules
         allowed to touch Domain/Mutex/Condition/Atomic directly (D8). *)
  defines_compare : bool;
      (* The file binds a value named [compare] somewhere; unqualified
         [compare] then plausibly refers to it, so D5 stays quiet. *)
}

let norm_path lid =
  match Longident.flatten lid with
  | "Stdlib" :: rest -> rest
  | l -> l

let pos_of_loc (loc : Location.t) =
  let p = loc.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Does this subtree mention a sort?  Used to quiet D7 when the
   Hashtbl fold feeds an explicit reordering in the same top-level
   binding. *)
let subtree_sorts si =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match List.rev (norm_path txt) with
            | ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") :: _ ->
              found := true
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure_item it si;
  !found

let structure_defines_compare str =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt = "compare"; _ } -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  List.iter (it.structure_item it) str;
  !found

let print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_bytes"; "print_int"; "print_float";
  ]

let key_ctor_names =
  [ "of_string"; "make"; "create"; "append"; "prefix"; "namespace"; "root";
    "empty"; "v" ]

(* Syntactic head of an expression, for D6: [Name.of_string s] and
   [Name.root] both resolve to the path [Name.…]. *)
let rec head_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (norm_path txt)
  | Pexp_construct ({ txt; _ }, _) -> Some (norm_path txt)
  | Pexp_apply (f, _) -> head_path f
  | Pexp_open (_, e) | Pexp_constraint (e, _) -> head_path e
  | _ -> None

let is_abstract_key ~key_modules e =
  match head_path e with
  | Some path when List.length path >= 2 ->
    let last = List.nth path (List.length path - 1) in
    List.exists (fun m -> List.mem m key_modules) path
    && List.mem last key_ctor_names
  | _ -> false

let scan_structure ctx ~key_modules ~registry ~emit ~record_kind str =
  let defines_compare = ctx.defines_compare in
  let sort_in_item = ref false in
  let check_ident loc path =
    let line, col = pos_of_loc loc in
    let f rule msg = emit ~rule ~line ~col ~msg in
    match path with
    | [ "Random"; "self_init" ] | [ "Random"; "State"; "make_self_init" ] ->
      f "D1"
        "nondeterministic RNG seeding; every stream must derive from an \
         explicit seed via Sim.Rng"
    | [ "Random"; sub ] when sub <> "State" && not ctx.is_rng_impl ->
      f "D2"
        (Printf.sprintf
           "Random.%s uses the global Random state; draw from a Sim.Rng \
            generator instead" sub)
    | [ "Unix"; ("gettimeofday" | "time" | "times") ] | [ "Sys"; "time" ]
      when not ctx.in_bin ->
      f "D3"
        (Printf.sprintf
           "wall-clock read (%s) outside bin/; simulated components must \
            only see virtual time" (String.concat "." path))
    | [ "Sys"; ("getenv" | "getenv_opt") ] | [ "Unix"; ("getenv" | "environment") ]
      when ctx.in_lib ->
      f "D4"
        (Printf.sprintf
           "%s in lib/: environment must not influence simulation results; \
            plumb configuration through function arguments"
           (String.concat "." path))
    | [ "compare" ] when ctx.in_keyspace && not defines_compare ->
      f "D5"
        "polymorphic compare in a key-bearing library; use the key \
         module's dedicated compare (Name.compare, String.compare, \
         Float.compare, ...)"
    | [ "Hashtbl"; ("hash" | "seeded_hash") ] when ctx.in_keyspace ->
      f "D5"
        "polymorphic Hashtbl.hash in a key-bearing library; hash a \
         canonical scalar (e.g. the key string) or use the key module's \
         hash"
    | (("Domain" | "Mutex" | "Condition" | "Semaphore" | "Atomic") as m) :: _
      when ctx.in_lib && not ctx.is_domain_impl ->
      f "D8"
        (Printf.sprintf
           "raw %s use in lib/; all concurrency must flow through \
            Sim.Parallel (trial fan-out) or Sim.Shard (intra-trial \
            sharding), which centralize the determinism argument — \
            ad-hoc domains, locks or atomics can reorder events with \
            the scheduler" m)
    | [ "Hashtbl"; (("iter" | "fold") as fn) ]
      when ctx.in_lib && not !sort_in_item ->
      f "D7"
        (Printf.sprintf
           "Hashtbl.%s iterates in hash order; sort before anything \
            order-sensitive (or suppress with a pragma/allowlist entry \
            explaining why the order cannot leak)" fn)
    | [ "Printf"; "printf" ] | [ "Format"; "printf" ]
    | [ "Format"; "std_formatter" ] | [ "stdout" ]
      when ctx.in_lib ->
      f "S2"
        (Printf.sprintf
           "%s writes to stdout from lib/; stdout belongs to exporters \
            (CSV/JSONL) — route diagnostics to stderr or a formatter \
            argument" (String.concat "." path))
    | [ fn ] when ctx.in_lib && List.mem fn print_fns ->
      f "S2"
        (Printf.sprintf
           "%s writes to stdout from lib/; stdout belongs to exporters \
            (CSV/JSONL) — route diagnostics to stderr or a formatter \
            argument" fn)
    | _ -> ()
  in
  (* T4 state: the constructor -> wire-name cases of [kind_to_string]
     and the constructor -> integer cases of [kind_id], joined against
     the registry after the whole structure has been scanned (the two
     bindings are separate structure items). *)
  let kts_cases = ref [] in
  let kid_cases = ref [] in
  let kid_defined = ref false in
  let rec match_cases e =
    match e.pexp_desc with
    | Pexp_function cases -> cases
    | Pexp_fun (_, _, _, body) -> match_cases body
    | Pexp_match (_, cases) -> cases
    | _ -> []
  in
  let ctor_of_pat p =
    match p.ppat_desc with
    | Ppat_construct ({ txt = Longident.Lident c; _ }, _) -> Some c
    | _ -> None
  in
  let collect_kind_to_string_cases e =
    List.iter
      (fun case ->
        match (ctor_of_pat case.pc_lhs, case.pc_rhs.pexp_desc) with
        | Some c, Pexp_constant (Pconst_string (s, sloc, _)) ->
          kts_cases := (c, (s, pos_of_loc sloc)) :: !kts_cases
        | _ -> ())
      (match_cases e)
  in
  let collect_kind_id_cases e =
    kid_defined := true;
    List.iter
      (fun case ->
        match (ctor_of_pat case.pc_lhs, case.pc_rhs.pexp_desc) with
        | Some c, Pexp_constant (Pconst_integer (n, None)) -> (
          match int_of_string_opt n with
          | Some id ->
            kid_cases := (c, (id, pos_of_loc case.pc_rhs.pexp_loc)) :: !kid_cases
          | None -> ())
        | _ -> ())
      (match_cases e)
  in
  (* T4: in a file defining both tables, every registered kind must
     carry a binary id equal to its registry position — the binary
     trace header snapshots the registry in order, so a missing or
     misnumbered id makes readers decode the wrong kind. *)
  let check_kind_ids () =
    match registry with
    | Some reg when !kid_defined && !kts_cases <> [] ->
      List.iteri
        (fun idx (wire, _regline) ->
          match
            List.find_opt (fun (_, (s, _)) -> s = wire) !kts_cases
          with
          | None -> () (* stale registry entry: T2's finding *)
          | Some (ctor, (_, (sline, scol))) -> (
            match List.assoc_opt ctor !kid_cases with
            | None ->
              emit ~rule:"T4" ~line:sline ~col:scol
                ~msg:
                  (Printf.sprintf
                     "registered trace kind %S has no stable binary id: add \
                      a kind_id case mapping %s to its registry position %d, \
                      or binary traces cannot encode it" wire ctor idx)
            | Some (id, (iline, icol)) ->
              if id <> idx then
                emit ~rule:"T4" ~line:iline ~col:icol
                  ~msg:
                    (Printf.sprintf
                       "binary id %d for trace kind %S disagrees with its \
                        registry position %d; the binary header snapshots \
                        the registry in order, so readers would decode the \
                        wrong kind" id wire idx)))
        reg
    | _ -> ()
  in
  let collect_kinds e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_constant (Pconst_string (s, sloc, _)) ->
              record_kind s;
              (match registry with
              | Some reg when not (List.mem_assoc s reg) ->
                let line, col = pos_of_loc sloc in
                emit ~rule:"T1" ~line ~col
                  ~msg:
                    (Printf.sprintf
                       "trace kind %S is emitted here but absent from the \
                        registry; add it (and document it) before shipping \
                        the event" s)
              | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident loc (norm_path txt)
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
                args )
            when ctx.in_keyspace
                 && (op = "=" || op = "<>" || op = "==" || op = "!=") ->
            if
              List.exists
                (fun (_, arg) -> is_abstract_key ~key_modules arg)
                args
            then begin
              let line, col = pos_of_loc e.pexp_loc in
              emit ~rule:"D6" ~line ~col
                ~msg:
                  (Printf.sprintf
                     "structural (%s) on an abstract key value; use the key \
                      module's equal/compare so representation changes \
                      cannot silently alter results" op)
            end
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
            let saved = !sort_in_item in
            sort_in_item := saved || subtree_sorts si;
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = "kind_to_string"; _ } ->
                  collect_kinds vb.pvb_expr;
                  collect_kind_to_string_cases vb.pvb_expr
                | Ppat_var { txt = "kind_id"; _ } ->
                  collect_kind_id_cases vb.pvb_expr
                | _ -> ())
              vbs;
            Ast_iterator.default_iterator.structure_item it si;
            sort_in_item := saved
          | Pstr_type (_, decls) when ctx.is_nack_impl ->
            (* T3: every [type reason] constructor in a nack.ml must
               have a registered [nack.<lowercased constructor>] trace
               kind — a refusal the plane can produce but never report
               is invisible to every overload experiment. *)
            (match registry with
            | None -> ()
            | Some reg ->
              List.iter
                (fun decl ->
                  if decl.ptype_name.txt = "reason" then
                    match decl.ptype_kind with
                    | Ptype_variant ctors ->
                      List.iter
                        (fun ctor ->
                          let expected =
                            "nack." ^ String.lowercase_ascii ctor.pcd_name.txt
                          in
                          if not (List.mem_assoc expected reg) then begin
                            let line, col = pos_of_loc ctor.pcd_loc in
                            emit ~rule:"T3" ~line ~col
                              ~msg:
                                (Printf.sprintf
                                   "NACK reason constructor %s has no \
                                    registered trace kind %S; register (and \
                                    emit) it so this refusal stays observable"
                                   ctor.pcd_name.txt expected)
                          end)
                        ctors
                    | _ -> ())
                decls);
            Ast_iterator.default_iterator.structure_item it si
          | _ -> Ast_iterator.default_iterator.structure_item it si);
    }
  in
  List.iter (it.structure_item it) str;
  check_kind_ids ()

(* --- parsing --- *)

let parse_error_finding exn =
  let loc, msg =
    match exn with
    | Syntaxerr.Error err -> (Syntaxerr.location_of_error err, "syntax error")
    | Lexer.Error (_, loc) -> (loc, "lexical error")
    | _ -> (Location.none, Printexc.to_string exn)
  in
  let line, col = if loc = Location.none then (1, 0) else pos_of_loc loc in
  (line, col, Printf.sprintf "%s; file cannot be checked" msg)

(* --- the driver --- *)

type inventory = {
  inv_pragmas : (string * pragma_site) list;  (* source file, pragma site *)
  inv_allows : allow_entry list;
  inv_allow_file : string option;
}

let empty_inventory =
  { inv_pragmas = []; inv_allows = []; inv_allow_file = None }

let finding_order a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let sort_findings fs = List.sort finding_order fs

let lint_full cfg =
  let ( let* ) = Result.bind in
  let read_rel rel =
    try Ok (read_file (Filename.concat cfg.root rel))
    with Sys_error e -> Result.Error e
  in
  let* allowlist =
    match cfg.allowlist_file with
    | None -> Ok []
    | Some f ->
      let* content = read_rel f in
      parse_allowlist ~file:f content
  in
  let* registry =
    match cfg.registry_file with
    | None -> Ok None
    | Some f ->
      let* content = read_rel f in
      Ok (Some (parse_registry content))
  in
  let* files =
    try Ok (collect_files cfg)
    with Invalid_argument m | Sys_error m -> Result.Error m
  in
  let findings = ref [] in
  let all_sites = ref [] in
  let seen_kinds : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  (* Path-scoped severity overrides: first matching entry wins.  [Skip]
     drops the finding entirely; [Demote] downgrades it to a warning. *)
  let scoped_action ~rule ~file =
    List.find_map
      (fun s ->
        if s.s_rule = rule && String.starts_with ~prefix:s.s_path file then
          Some s.s_action
        else None)
      cfg.scoped
  in
  let scan_file rel =
    let src = read_file (Filename.concat cfg.root rel) in
    let pragmas = pragmas_of_source src in
    List.iter
      (fun site -> all_sites := (rel, site) :: !all_sites)
      (pragma_sites pragmas);
    let emit ~rule ~line ~col ~msg =
      match scoped_action ~rule ~file:rel with
      | Some Skip -> ()
      | (Some Demote | None) as sc ->
        let status =
          if pragma_suppresses pragmas ~line ~rule then Pragma_suppressed
          else
            match allowlist_lookup allowlist ~rule ~file:rel with
            | Some e -> Allowlisted e.a_just
            | None -> Active
        in
        let severity =
          if sc = Some Demote then Warning else severity_of_rule rule
        in
        findings :=
          { rule; severity; file = rel; line; col; message = msg; status }
          :: !findings
    in
    let in_lib = String.starts_with ~prefix:"lib/" rel in
    let ctx =
      {
        rel;
        in_lib;
        in_bin = String.starts_with ~prefix:"bin/" rel;
        in_keyspace =
          String.starts_with ~prefix:"lib/sim/" rel
          || String.starts_with ~prefix:"lib/ndn/" rel;
        is_rng_impl = rel = "lib/sim/rng.ml";
        is_nack_impl = Filename.basename rel = "nack.ml";
        is_domain_impl =
          rel = "lib/sim/parallel.ml" || rel = "lib/sim/shard.ml";
        defines_compare = false;
      }
    in
    if Filename.check_suffix rel ".ml" then begin
      (* S1: every lib module must publish an interface. *)
      if in_lib && not (Sys.file_exists (Filename.concat cfg.root (rel ^ "i")))
      then
        emit ~rule:"S1" ~line:1 ~col:0
          ~msg:
            "module under lib/ has no .mli; every library module must \
             declare its interface";
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf rel;
      match Parse.implementation lexbuf with
      | str ->
        let ctx = { ctx with defines_compare = structure_defines_compare str } in
        scan_structure ctx ~key_modules:cfg.key_modules ~registry ~emit
          ~record_kind:(fun s -> Hashtbl.replace seen_kinds s ())
          str
      | exception exn ->
        let line, col, msg = parse_error_finding exn in
        emit ~rule:"E0" ~line ~col ~msg
    end
    else begin
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf rel;
      match Parse.interface lexbuf with
      | _sg -> ()
      | exception exn ->
        let line, col, msg = parse_error_finding exn in
        emit ~rule:"E0" ~line ~col ~msg
    end
  in
  List.iter scan_file files;
  (* T2: the registry must not outlive the code it documents. *)
  (match (registry, cfg.registry_file) with
  | Some reg, Some reg_file ->
    List.iter
      (fun (kind, lineno) ->
        if not (Hashtbl.mem seen_kinds kind) then begin
          let status =
            match allowlist_lookup allowlist ~rule:"T2" ~file:reg_file with
            | Some e -> Allowlisted e.a_just
            | None -> Active
          in
          findings :=
            {
              rule = "T2";
              severity = severity_of_rule "T2";
              file = reg_file;
              line = lineno;
              col = 0;
              message =
                Printf.sprintf
                  "registry lists trace kind %S but no kind_to_string \
                   emits it; remove the stale entry" kind;
              status;
            }
            :: !findings
        end)
      reg
  | _ -> ());
  let inventory =
    {
      inv_pragmas = List.rev !all_sites;
      inv_allows = allowlist;
      inv_allow_file = cfg.allowlist_file;
    }
  in
  Ok (sort_findings !findings, inventory)

let lint cfg = Result.map fst (lint_full cfg)

(* --- S3: stale suppressions ---

   A pragma site is *used* when some finding on a line it covers names
   one of its rules and was pragma-suppressed; an allowlist entry is
   used when it is the entry [allowlist_lookup] resolved for some
   allowlisted finding.  Everything else is a dead suppression — but
   only for rules in [checked_rules]: the syntactic pass must not
   declare a typed-rule pragma stale just because it cannot see typed
   findings (and vice versa).  Pragmas naming S3 itself are exempt, so
   a stale-suppression finding can itself be suppressed. *)
let stale_findings ~checked_rules inventory findings =
  let checked r = List.mem r checked_rules in
  (* An "all" token can only be judged stale when this run checked the
     whole rule universe — a syntactic-only pass must not condemn a
     pragma that is in fact suppressing a typed finding. *)
  let universe_checked =
    List.for_all
      (fun r -> r.id = "S3" || List.mem r.id checked_rules)
      all_rules
  in
  let stale = ref [] in
  List.iter
    (fun (file, site) ->
      if not (List.mem "S3" site.ps_rules) then
        List.iter
          (fun rule ->
            let judged = if rule = "all" then universe_checked else checked rule in
            if judged then begin
              let used =
                List.exists
                  (fun f ->
                    f.file = file
                    && f.status = Pragma_suppressed
                    && (rule = "all" || f.rule = rule)
                    && List.mem f.line site.ps_covers)
                  findings
              in
              if not used then
                stale :=
                  {
                    rule = "S3";
                    severity = severity_of_rule "S3";
                    file;
                    line = site.ps_line;
                    col = 0;
                    message =
                      Printf.sprintf
                        "stale pragma: no %s finding on the line it covers; \
                         delete it"
                        (if rule = "all" then "suppressable" else rule);
                    status = Active;
                  }
                  :: !stale
            end)
          site.ps_rules)
    inventory.inv_pragmas;
  (match inventory.inv_allow_file with
  | None -> ()
  | Some allow_file ->
    List.iter
      (fun e ->
        let judged =
          if e.a_rule = "all" then universe_checked else checked e.a_rule
        in
        if judged then begin
          (* Replicate first-match resolution: the entry is live only if
             it is the one [allowlist_lookup] returns for some
             allowlisted finding. *)
          let used =
            List.exists
              (fun f ->
                (match f.status with Allowlisted _ -> true | _ -> false)
                && allowlist_lookup inventory.inv_allows ~rule:f.rule
                     ~file:f.file
                   = Some e)
              findings
          in
          if not used then
            stale :=
              {
                rule = "S3";
                severity = severity_of_rule "S3";
                file = allow_file;
                line = e.a_line;
                col = 0;
                message =
                  Printf.sprintf
                    "stale allowlist entry: %s %s matches no finding; delete \
                     it"
                    e.a_rule e.a_path;
                status = Active;
              }
              :: !stale
        end)
      inventory.inv_allows);
  sort_findings !stale

let active fs = List.filter (fun f -> f.status = Active) fs

let exit_code fs = if active fs = [] then 0 else 1

(* --- rendering --- *)

type format = Text | Jsonl

let format_of_string s =
  match String.lowercase_ascii s with
  | "text" -> Some Text
  | "jsonl" | "json" -> Some Jsonl
  | _ -> None

let severity_to_string = function Error -> "error" | Warning -> "warning"

let finding_to_text f =
  let suffix =
    match f.status with
    | Active -> ""
    | Allowlisted j -> Printf.sprintf " (allowlisted: %s)" j
    | Pragma_suppressed -> " (pragma-suppressed)"
  in
  Printf.sprintf "%s:%d:%d: %s [%s] %s%s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message suffix

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_jsonl f =
  let status, just =
    match f.status with
    | Active -> ("active", None)
    | Allowlisted j -> ("allowlisted", Some j)
    | Pragma_suppressed -> ("pragma", None)
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"status\":\"%s\"%s}"
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message) status
    (match just with
    | None -> ""
    | Some j -> Printf.sprintf ",\"justification\":\"%s\"" (json_escape j))

let render fmt fs =
  let line = match fmt with Text -> finding_to_text | Jsonl -> finding_to_jsonl in
  String.concat "" (List.map (fun f -> line f ^ "\n") fs)
