(** [ndnlint] — static determinism & invariant checks for the simulator.

    A standalone analysis on [compiler-libs]: every [.ml]/[.mli] under
    the configured paths is parsed ([Parse.implementation] /
    [Parse.interface]) and walked with an {!Ast_iterator}, producing
    typed, severity-ranked {!finding}s with stable rule IDs and
    [file:line:col] spans.  No type information is consulted, so every
    rule is a syntactic invariant; the few heuristics are documented in
    DESIGN.md §11 and escape hatches exist at two scopes:

    - a per-line pragma [(* ndnlint: allow RULE... -- why *)] (placed on
      the offending line, or alone on the line above it);
    - a central path-scoped allowlist file whose entries {e must} carry
      a justification ([RULE PATH -- why]).

    Rule families: [D*] determinism (the byte-identity guarantee behind
    every [--jobs N] experiment), [T*] trace-kind registry hygiene,
    [S*] structure, [E0] parse failure. *)

type severity = Error | Warning

type status =
  | Active  (** A real violation: makes {!exit_code} non-zero. *)
  | Allowlisted of string  (** Suppressed by the allowlist; carries the
                               entry's justification. *)
  | Pragma_suppressed  (** Suppressed by an in-source pragma. *)

type finding = {
  rule : string;  (** Stable rule ID, e.g. ["D1"]. *)
  severity : severity;
  file : string;  (** Path relative to the configured root. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, as in compiler messages. *)
  message : string;
  status : status;
}

type rule_info = { id : string; severity : severity; synopsis : string }

val all_rules : rule_info list
(** The full rule table, in ID order.  Mirrored (with rationale) in
    DESIGN.md §11. *)

type config = {
  root : string;  (** Directory paths below are resolved against. *)
  paths : string list;  (** Files or directories, relative to [root]. *)
  allowlist_file : string option;  (** Relative to [root]. *)
  registry_file : string option;
      (** Trace-kind registry (one wire name per line); [None] disables
          the [T*] rules. *)
  excludes : string list;  (** Relative dir prefixes never scanned. *)
  key_modules : string list;
      (** Modules whose values are treated as abstract keys by [D6]. *)
}

val config :
  ?paths:string list ->
  ?allowlist_file:string ->
  ?registry_file:string ->
  ?excludes:string list ->
  ?key_modules:string list ->
  root:string ->
  unit ->
  config
(** Defaults: [paths = ["lib"; "bin"; "bench"; "test"]],
    [excludes = ["test/lint_fixtures"]],
    [key_modules = ["Name"; "Interest"; "Data"; "Packet"]], no
    allowlist, no registry. *)

val lint : config -> (finding list, string) result
(** Scan the tree.  [Ok findings] lists {e every} finding — active,
    allowlisted and pragma-suppressed alike — sorted by
    (file, line, col, rule).  [Error msg] reports a configuration
    problem (unreadable root, malformed allowlist or registry); a
    source file that fails to parse is not an error but an [E0]
    finding. *)

val active : finding list -> finding list
(** Only the findings that should fail a build. *)

val exit_code : finding list -> int
(** [0] when {!active} is empty, [1] otherwise. *)

(** {1 Rendering} *)

type format = Text | Jsonl

val format_of_string : string -> format option

val finding_to_text : finding -> string
(** [file:line:col: severity [RULE] message] (no newline). *)

val finding_to_jsonl : finding -> string
(** One JSON object per finding (no newline), schema:
    [{"rule":…,"severity":…,"file":…,"line":…,"col":…,"message":…,
      "status":"active"|"allowlisted"|"pragma","justification":…?}]. *)

val render : format -> finding list -> string
(** All findings, one per line, each line newline-terminated. *)
