(** [ndnlint] — static determinism & invariant checks for the simulator.

    A standalone analysis on [compiler-libs]: every [.ml]/[.mli] under
    the configured paths is parsed ([Parse.implementation] /
    [Parse.interface]) and walked with an {!Ast_iterator}, producing
    typed, severity-ranked {!finding}s with stable rule IDs and
    [file:line:col] spans.  No type information is consulted, so every
    syntactic rule runs on a single file in isolation; the few
    heuristics are documented in DESIGN.md §11 and escape hatches exist
    at two scopes:

    - a per-line pragma [(* ndnlint: allow RULE[, RULE...] -- why *)]
      (placed on the offending line, or alone on the line above it; one
      comment may list several rules, and a line may carry several
      pragmas);
    - a central path-scoped allowlist file whose entries {e must} carry
      a justification ([RULE PATH -- why]).

    Rule families: [D*] determinism (the byte-identity guarantee behind
    every [--jobs N] experiment), [T*] trace-kind registry hygiene,
    [S*] structure/suppression hygiene, [E0] parse failure.  The typed
    rules ([R1], [A1], [A2], [G1]) are listed here for the shared rule
    table and suppression machinery but are {e produced} by the
    [Ndntype] pass over [.cmt] files (DESIGN.md §15), not by {!lint}. *)

type severity = Error | Warning

type status =
  | Active  (** A real violation: makes {!exit_code} non-zero. *)
  | Allowlisted of string  (** Suppressed by the allowlist; carries the
                               entry's justification. *)
  | Pragma_suppressed  (** Suppressed by an in-source pragma. *)

type finding = {
  rule : string;  (** Stable rule ID, e.g. ["D1"]. *)
  severity : severity;
  file : string;  (** Path relative to the configured root. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, as in compiler messages. *)
  message : string;
  status : status;
}

type rule_info = {
  id : string;
  severity : severity;
  synopsis : string;
  typed : bool;
      (** [true] for rules computed by the [Ndntype] cmt pass; the
          syntactic scanner never emits them. *)
}

val all_rules : rule_info list
(** The full rule table, in ID order.  Mirrored (with rationale) in
    DESIGN.md §11 (syntactic) and §15 (typed). *)

val severity_of_rule : string -> severity
(** Severity from the rule table; [Error] for unknown IDs. *)

(** {1 Path-scoped severities} *)

type scoped_action =
  | Skip  (** Drop the finding entirely under the path. *)
  | Demote  (** Downgrade the finding to [Warning] under the path. *)

type scoped_severity = {
  s_rule : string;
  s_path : string;  (** Path prefix, relative to the root. *)
  s_action : scoped_action;
}

val default_scoped : scoped_severity list
(** D3 (wall-clock) skipped under [bench/] and [tools/]: harnesses and
    developer tooling legitimately measure real time. *)

type config = {
  root : string;  (** Directory paths below are resolved against. *)
  paths : string list;  (** Files or directories, relative to [root]. *)
  allowlist_file : string option;  (** Relative to [root]. *)
  registry_file : string option;
      (** Trace-kind registry (one wire name per line); [None] disables
          the [T*] rules. *)
  excludes : string list;  (** Relative dir prefixes never scanned. *)
  key_modules : string list;
      (** Modules whose values are treated as abstract keys by [D6]. *)
  scoped : scoped_severity list;  (** First matching entry wins. *)
}

val config :
  ?paths:string list ->
  ?allowlist_file:string ->
  ?registry_file:string ->
  ?excludes:string list ->
  ?key_modules:string list ->
  ?scoped:scoped_severity list ->
  root:string ->
  unit ->
  config
(** Defaults: [paths = ["lib"; "bin"; "bench"; "test"; "tools"]],
    [excludes = ["test/lint_fixtures"; "test/typedlint_fixtures"]],
    [key_modules = ["Name"; "Interest"; "Data"; "Packet"]],
    [scoped = default_scoped], no allowlist, no registry. *)

(** {1 Suppression machinery}

    Shared with the [Ndntype] typed pass, so both stages resolve
    pragmas and allowlist entries identically. *)

type pragma_site = {
  ps_line : int;  (** Line the pragma comment sits on. *)
  ps_rules : string list;  (** Rule tokens, ["all"] included. *)
  ps_covers : int list;  (** Lines the pragma suppresses on. *)
}

type pragmas

val pragmas_of_source : string -> pragmas
(** Scan a source buffer for [ndnlint: allow] pragmas.  A pragma alone
    on its line also covers the next line. *)

val pragma_suppresses : pragmas -> line:int -> rule:string -> bool

val pragma_sites : pragmas -> pragma_site list
(** Every pragma found, in source order — the S3 staleness universe. *)

type allow_entry = {
  a_rule : string;
  a_path : string;  (** Exact file or directory prefix. *)
  a_just : string;
  a_line : int;  (** Line of the entry in the allowlist file. *)
}

val parse_allowlist :
  file:string -> string -> (allow_entry list, string) result
(** [file] only labels error messages.  Rejects entries without a
    [-- justification]. *)

val allowlist_lookup :
  allow_entry list -> rule:string -> file:string -> allow_entry option
(** First matching entry, if any. *)

(** {1 Running the linter} *)

type inventory = {
  inv_pragmas : (string * pragma_site) list;
      (** (source file, site) for every pragma in the scanned tree. *)
  inv_allows : allow_entry list;
  inv_allow_file : string option;
}
(** Every suppression the scan encountered, matched or not — the input
    to {!stale_findings}. *)

val empty_inventory : inventory

val lint_full : config -> (finding list * inventory, string) result
(** Scan the tree.  [Ok (findings, inventory)] lists {e every} finding —
    active, allowlisted and pragma-suppressed alike — sorted by
    (file, line, col, rule), plus the suppression inventory.
    [Error msg] reports a configuration problem (unreadable root,
    malformed allowlist or registry); a source file that fails to parse
    is not an error but an [E0] finding. *)

val lint : config -> (finding list, string) result
(** {!lint_full} without the inventory. *)

val stale_findings :
  checked_rules:string list -> inventory -> finding list -> finding list
(** S3: pragmas and allowlist entries that suppressed nothing in
    [findings] (which should be the {e merged} results of every pass
    that ran).  Only suppressions naming a rule in [checked_rules] are
    judged — a syntactic-only run must not condemn a typed-rule pragma
    it cannot match; ["all"] tokens are judged only when
    [checked_rules] spans the whole rule table.  Sites that also name
    [S3] are exempt.  Sorted like {!lint_full}'s findings. *)

val sort_findings : finding list -> finding list
(** Sort by (file, line, col, rule) — the order {!lint_full} returns
    and the renderers expect; use after merging passes. *)

val active : finding list -> finding list
(** Only the findings that should fail a build. *)

val exit_code : finding list -> int
(** [0] when {!active} is empty, [1] otherwise. *)

(** {1 Rendering} *)

type format = Text | Jsonl

val format_of_string : string -> format option

val finding_to_text : finding -> string
(** [file:line:col: severity [RULE] message] (no newline). *)

val finding_to_jsonl : finding -> string
(** One JSON object per finding (no newline), schema:
    [{"rule":…,"severity":…,"file":…,"line":…,"col":…,"message":…,
      "status":"active"|"allowlisted"|"pragma","justification":…?}]. *)

val render : format -> finding list -> string
(** All findings, one per line, each line newline-terminated. *)
